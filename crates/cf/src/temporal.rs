//! Temporal relevance weighting (Equation 7 and §6.2 of the paper).
//!
//! The item-based recommender can weight each of the querying user's past ratings by an
//! exponential decay `e^{-α (t - t_{A,j})}` so that recent opinions count more. The decay
//! is applied inside [`crate::ItemKnn`] (via [`crate::ItemKnnConfig::temporal_alpha`]);
//! this module provides the decay function itself plus the α-sweep utility used to
//! reproduce Figure 5, where the optimal α is selected by minimising MAE on a validation
//! set.

use crate::rating::Timestep;
use serde::{Deserialize, Serialize};

/// Exponential time-decay weight `e^{-α Δt}` used by Equation 7.
///
/// `alpha == 0` disables the decay (weight 1 for every rating).
#[inline]
pub fn decay_weight(alpha: f64, now: Timestep, rated_at: Timestep) -> f64 {
    debug_assert!(alpha >= 0.0, "negative decay rates are not meaningful");
    // lint: float-eq — alpha == 0.0 exactly means "decay disabled", weight 1 for all ages.
    if alpha == 0.0 {
        1.0
    } else {
        (-alpha * now.elapsed_since(rated_at) as f64).exp()
    }
}

/// Result of evaluating one candidate α in a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaPoint {
    /// Decay rate evaluated.
    pub alpha: f64,
    /// Mean absolute error measured with this decay rate.
    pub mae: f64,
}

/// Outcome of an α sweep: every evaluated point plus the optimum (the paper reports the
/// optimally tuned `α_o` per direction in Figure 5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaSweep {
    /// All evaluated `(α, MAE)` points, in the order they were evaluated.
    pub points: Vec<AlphaPoint>,
}

impl AlphaSweep {
    /// Runs a sweep by calling `evaluate(α) -> MAE` for each candidate.
    pub fn run(
        alphas: impl IntoIterator<Item = f64>,
        mut evaluate: impl FnMut(f64) -> f64,
    ) -> Self {
        let points = alphas
            .into_iter()
            .map(|alpha| AlphaPoint {
                alpha,
                mae: evaluate(alpha),
            })
            .collect();
        AlphaSweep { points }
    }

    /// The candidate with the lowest MAE (`α_o` in the paper), if any candidate was
    /// evaluated and produced a finite error.
    pub fn optimal(&self) -> Option<AlphaPoint> {
        self.points
            .iter()
            .filter(|p| p.mae.is_finite())
            .copied()
            .min_by(|a, b| {
                a.mae
                    .partial_cmp(&b.mae)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The canonical grid used by Figure 5: α ∈ {0, 0.01, …, 0.2}.
    pub fn paper_grid() -> Vec<f64> {
        (0..=20).map(|i| i as f64 * 0.01).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_alpha_means_no_decay() {
        assert_eq!(decay_weight(0.0, Timestep(100), Timestep(0)), 1.0);
    }

    #[test]
    fn decay_decreases_with_age() {
        let now = Timestep(100);
        let recent = decay_weight(0.1, now, Timestep(95));
        let old = decay_weight(0.1, now, Timestep(10));
        assert!(recent > old);
        assert!(old > 0.0);
        assert!((decay_weight(0.1, now, now) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn future_ratings_do_not_amplify() {
        // elapsed_since saturates at zero, so a "future" rating gets weight 1, not > 1
        assert_eq!(decay_weight(0.5, Timestep(5), Timestep(50)), 1.0);
    }

    #[test]
    fn sweep_finds_minimum() {
        // synthetic convex error curve with minimum at alpha = 0.03
        let sweep = AlphaSweep::run(AlphaSweep::paper_grid(), |a| (a - 0.03).powi(2) + 0.7);
        let best = sweep.optimal().unwrap();
        assert!((best.alpha - 0.03).abs() < 1e-9);
        assert_eq!(sweep.points.len(), 21);
    }

    #[test]
    fn sweep_ignores_non_finite_errors() {
        let sweep = AlphaSweep::run([0.0, 0.1, 0.2], |a| if a == 0.1 { f64::NAN } else { a });
        assert_eq!(sweep.optimal().unwrap().alpha, 0.0);
    }

    #[test]
    fn empty_sweep_has_no_optimum() {
        let sweep = AlphaSweep::run(std::iter::empty::<f64>(), |_| 0.0);
        assert!(sweep.optimal().is_none());
    }

    proptest! {
        /// Decay weights are always in [0, 1] for non-negative α (extreme ages may
        /// underflow to exactly zero, which is still a valid weight).
        #[test]
        fn weights_bounded(alpha in 0.0f64..2.0, now in 0u32..1000, then in 0u32..1000) {
            let w = decay_weight(alpha, Timestep(now), Timestep(then));
            prop_assert!((0.0..=1.0).contains(&w));
        }

        /// Weight is monotonically non-increasing in the age of the rating.
        #[test]
        fn weights_monotone_in_age(alpha in 0.0f64..2.0, now in 100u32..1000, d1 in 0u32..100, d2 in 0u32..100) {
            let (older, newer) = if d1 > d2 { (d1, d2) } else { (d2, d1) };
            let w_old = decay_weight(alpha, Timestep(now), Timestep(now - older));
            let w_new = decay_weight(alpha, Timestep(now), Timestep(now - newer));
            prop_assert!(w_old <= w_new + 1e-12);
        }
    }
}
