//! Top-k selection utilities.
//!
//! Every phase of the paper ("top-k neighbours", "top-k similar items per layer",
//! "top-N recommendations") boils down to keeping the k largest-scored candidates.
//! [`TopK`] is a small bounded min-heap keyed by an `f64` score that tolerates NaN-free
//! floating point scores and returns its content sorted by descending score.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the bounded heap: ordered by score ascending so the heap root is the
/// current minimum and can be evicted cheaply.
#[derive(Clone, Copy, Debug)]
struct HeapEntry<T> {
    score: f64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum score at the root.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// Bounded collection retaining the `k` highest-scored payloads.
#[derive(Clone, Debug)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> TopK<T> {
    /// Creates a collector for the `k` best items. `k == 0` collects nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers a candidate. Non-finite scores are ignored.
    pub fn push(&mut self, score: f64, payload: T) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { score, payload });
        } else if let Some(min) = self.heap.peek() {
            if score > min.score {
                self.heap.pop();
                self.heap.push(HeapEntry { score, payload });
            }
        }
    }

    /// Number of retained candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th (smallest retained) score, if the collector is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Consumes the collector and returns `(score, payload)` pairs sorted by descending
    /// score (ties keep an arbitrary but deterministic order).
    pub fn into_sorted_vec(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self
            .heap
            .into_iter()
            .map(|e| (e.score, e.payload))
            .collect();
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
        v
    }
}

/// Convenience: select the top-k of an iterator of `(score, payload)` pairs.
pub fn top_k<T>(k: usize, iter: impl IntoIterator<Item = (f64, T)>) -> Vec<(f64, T)> {
    let mut collector = TopK::new(k);
    for (score, payload) in iter {
        collector.push(score, payload);
    }
    collector.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_the_k_largest() {
        let scores = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0];
        let got = top_k(3, scores.iter().enumerate().map(|(i, &s)| (s, i)));
        let got_scores: Vec<f64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(got_scores, vec![9.0, 5.0, 4.0]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let got = top_k(0, [(1.0, "a"), (2.0, "b")]);
        assert!(got.is_empty());
        let mut c = TopK::new(0);
        c.push(5.0, ());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn fewer_candidates_than_k_returns_all_sorted() {
        let got = top_k(10, [(1.0, "a"), (3.0, "b"), (2.0, "c")]);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, "b");
        assert_eq!(got[2].1, "a");
    }

    #[test]
    fn nan_and_infinite_scores_are_ignored() {
        let got = top_k(5, [(f64::NAN, 0), (f64::INFINITY, 1), (2.0, 2), (1.0, 3)]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (2.0, 2));
    }

    #[test]
    fn threshold_reports_kth_score_only_when_full() {
        let mut c = TopK::new(2);
        assert_eq!(c.threshold(), None);
        c.push(1.0, ());
        assert_eq!(c.threshold(), None);
        c.push(5.0, ());
        assert_eq!(c.threshold(), Some(1.0));
        c.push(3.0, ());
        assert_eq!(c.threshold(), Some(3.0));
    }

    #[test]
    fn negative_scores_are_supported() {
        let got = top_k(2, [(-5.0, "a"), (-1.0, "b"), (-3.0, "c")]);
        assert_eq!(got[0].1, "b");
        assert_eq!(got[1].1, "c");
    }

    proptest! {
        /// The collector returns exactly the k largest values of the input (as a multiset).
        #[test]
        fn matches_full_sort(k in 0usize..20, values in proptest::collection::vec(-100.0f64..100.0, 0..200)) {
            let got: Vec<f64> = top_k(k, values.iter().map(|&v| (v, ()))).into_iter().map(|(s, _)| s).collect();
            let mut expect = values.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            expect.truncate(k);
            prop_assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert!((g - e).abs() < 1e-12);
            }
        }

        /// Output is always sorted descending.
        #[test]
        fn output_sorted_descending(k in 1usize..10, values in proptest::collection::vec(-1.0f64..1.0, 0..100)) {
            let got = top_k(k, values.iter().map(|&v| (v, ())));
            for w in got.windows(2) {
                prop_assert!(w[0].0 >= w[1].0);
            }
        }
    }
}
