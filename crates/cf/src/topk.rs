//! Top-k selection utilities.
//!
//! Every phase of the paper ("top-k neighbours", "top-k similar items per layer",
//! "top-N recommendations") boils down to keeping the k largest-scored candidates.
//! [`TopK`] is a small bounded min-heap keyed by an `f64` score that tolerates NaN-free
//! floating point scores and returns its content sorted by descending score. All score
//! comparisons use the total order ([`f64::total_cmp`]) with the insertion sequence as
//! the tie-break, so the retained set and its output order are pure functions of the
//! offered `(score, payload)` sequence — never of heap internals or of a NaN comparing
//! `Equal` to everything.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the bounded heap: ordered so the heap root is the current eviction
/// candidate — the lowest score, ties resolved towards the *latest* insertion so that
/// earlier offers survive deterministically.
#[derive(Clone, Copy, Debug)]
struct HeapEntry<T> {
    score: f64,
    /// Insertion sequence number: the stable tie-break for equal scores.
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on the score: BinaryHeap is a max-heap, we want the minimum score at
        // the root. Equal scores rank the later insertion closer to the root, so ties
        // evict last-in first and the first k equal-scored offers are retained.
        other
            .score
            .total_cmp(&self.score)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Bounded collection retaining the `k` highest-scored payloads.
#[derive(Clone, Debug)]
pub struct TopK<T> {
    k: usize,
    next_seq: u64,
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> TopK<T> {
    /// Creates a collector for the `k` best items. `k == 0` collects nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            next_seq: 0,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers a candidate. Non-finite scores are ignored. A candidate scoring equal to
    /// the current k-th entry does not displace it (first-offered wins ties).
    pub fn push(&mut self, score: f64, payload: T) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry {
                score,
                seq,
                payload,
            });
        } else if let Some(min) = self.heap.peek() {
            if score.total_cmp(&min.score) == Ordering::Greater {
                self.heap.pop();
                self.heap.push(HeapEntry {
                    score,
                    seq,
                    payload,
                });
            }
        }
    }

    /// Number of retained candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th (smallest retained) score, if the collector is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Consumes the collector and returns `(score, payload)` pairs sorted by descending
    /// score (ties keep their offer order), using the total order on scores — the output
    /// never depends on the heap's internal layout or on the order equal-scored
    /// candidates happened to be stored in.
    pub fn into_sorted_vec(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, u64, T)> = self
            .heap
            .into_iter()
            .map(|e| (e.score, e.seq, e.payload))
            .collect();
        v.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(score, _, p)| (score, p)).collect()
    }
}

/// Convenience: select the top-k of an iterator of `(score, payload)` pairs.
pub fn top_k<T>(k: usize, iter: impl IntoIterator<Item = (f64, T)>) -> Vec<(f64, T)> {
    let mut collector = TopK::new(k);
    for (score, payload) in iter {
        collector.push(score, payload);
    }
    collector.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_the_k_largest() {
        let scores = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0];
        let got = top_k(3, scores.iter().enumerate().map(|(i, &s)| (s, i)));
        let got_scores: Vec<f64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(got_scores, vec![9.0, 5.0, 4.0]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let got = top_k(0, [(1.0, "a"), (2.0, "b")]);
        assert!(got.is_empty());
        let mut c = TopK::new(0);
        c.push(5.0, ());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn fewer_candidates_than_k_returns_all_sorted() {
        let got = top_k(10, [(1.0, "a"), (3.0, "b"), (2.0, "c")]);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, "b");
        assert_eq!(got[2].1, "a");
    }

    #[test]
    fn nan_and_infinite_scores_are_ignored() {
        let got = top_k(5, [(f64::NAN, 0), (f64::INFINITY, 1), (2.0, 2), (1.0, 3)]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (2.0, 2));
    }

    #[test]
    fn threshold_reports_kth_score_only_when_full() {
        let mut c = TopK::new(2);
        assert_eq!(c.threshold(), None);
        c.push(1.0, ());
        assert_eq!(c.threshold(), None);
        c.push(5.0, ());
        assert_eq!(c.threshold(), Some(1.0));
        c.push(3.0, ());
        assert_eq!(c.threshold(), Some(3.0));
    }

    #[test]
    fn nan_poisoned_streams_keep_a_deterministic_order() {
        // Regression: the sort used to compare with `partial_cmp(..).unwrap_or(Equal)`,
        // under which a NaN compares Equal to everything and the output order (and thus
        // the top-N cut) depended on where the NaN sat in the input. NaNs must be
        // dropped and the surviving order must be a pure function of the finite offers.
        let finite = [(2.0, "a"), (1.0, "b"), (2.0, "c"), (0.5, "d")];
        let expected = top_k(3, finite);
        for nan_pos in 0..=finite.len() {
            let mut poisoned: Vec<(f64, &str)> = finite.to_vec();
            poisoned.insert(nan_pos, (f64::NAN, "poison"));
            let got = top_k(3, poisoned);
            assert_eq!(
                got, expected,
                "NaN at position {nan_pos} changed the top-N output"
            );
        }
    }

    #[test]
    fn equal_scores_keep_first_offered_payloads_in_offer_order() {
        // Five equal-scored offers into a k=3 collector: the first three must survive,
        // in offer order — not whichever the heap happened to keep.
        let got = top_k(
            3,
            [(1.0, "a"), (1.0, "b"), (1.0, "c"), (1.0, "d"), (1.0, "e")],
        );
        assert_eq!(got, vec![(1.0, "a"), (1.0, "b"), (1.0, "c")]);
        // a strictly better late offer still displaces the weakest tie deterministically
        let got = top_k(2, [(1.0, "a"), (1.0, "b"), (2.0, "c")]);
        assert_eq!(got, vec![(2.0, "c"), (1.0, "a")]);
    }

    #[test]
    fn negative_scores_are_supported() {
        let got = top_k(2, [(-5.0, "a"), (-1.0, "b"), (-3.0, "c")]);
        assert_eq!(got[0].1, "b");
        assert_eq!(got[1].1, "c");
    }

    proptest! {
        /// The collector returns exactly the k largest values of the input (as a multiset).
        #[test]
        fn matches_full_sort(k in 0usize..20, values in proptest::collection::vec(-100.0f64..100.0, 0..200)) {
            let got: Vec<f64> = top_k(k, values.iter().map(|&v| (v, ()))).into_iter().map(|(s, _)| s).collect();
            let mut expect = values.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            expect.truncate(k);
            prop_assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert!((g - e).abs() < 1e-12);
            }
        }

        /// Output is always sorted descending.
        #[test]
        fn output_sorted_descending(k in 1usize..10, values in proptest::collection::vec(-1.0f64..1.0, 0..100)) {
            let got = top_k(k, values.iter().map(|&v| (v, ())));
            for w in got.windows(2) {
                prop_assert!(w[0].0 >= w[1].0);
            }
        }
    }
}
