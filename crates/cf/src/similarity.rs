//! Similarity metrics and significance statistics.
//!
//! Three classical metrics appear in the paper:
//!
//! * **user–user Pearson-style similarity** (Equation 1, Algorithm 1, Phase 1) — computed
//!   on ratings mean-centred by the *item* average,
//! * **item–item adjusted cosine** (Equations 3 and 6, Algorithm 2 / §3.1) — computed on
//!   ratings mean-centred by the *user* average, which the paper (following Sarwar et al.)
//!   considers the most effective baseline similarity, and
//! * plain **cosine** and **Pearson** item–item similarities, provided for completeness
//!   and ablation benches.
//!
//! On top of the raw similarity the X-Sim metric needs the *weighted significance*
//! `S_{i,j}` (Definition 2: users who mutually like or mutually dislike the pair) and its
//! normalised form `Ŝ_{i,j} = S_{i,j} / |Y_i ∪ Y_j|` (Definition 4). Both are returned in
//! a single [`SimilarityStats`] record so that one merge pass over the two item profiles
//! yields everything the graph layer needs.

use crate::ids::{ItemId, UserId};
use crate::matrix::RatingMatrix;
use serde::{Deserialize, Serialize};

/// Which item–item similarity formula to use for the baseline similarity graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SimilarityMetric {
    /// Adjusted cosine (Equation 6) — ratings centred by the user average. The paper's
    /// default and the metric used for every reported experiment.
    #[default]
    AdjustedCosine,
    /// Plain cosine over raw rating vectors.
    Cosine,
    /// Pearson correlation over co-rating users (centred by each item's mean over the
    /// co-rating set).
    Pearson,
}

/// Full pairwise statistics for an item pair `(i, j)`.
///
/// The counters are `u32` rather than `usize`: a pair can never have more
/// co-raters than there are users (ids are `u32`), and the narrower layout
/// keeps the record at 24 bytes so the similarity-graph arena that stores one
/// record per undirected edge stays compact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimilarityStats {
    /// The similarity value under the chosen metric, in `[-1, 1]` (0 if undefined).
    pub similarity: f64,
    /// Number of users who rated both items.
    pub co_raters: u32,
    /// Weighted significance `S_{i,j}` (Definition 2): mutual likes + mutual dislikes.
    pub significance: u32,
    /// Size of the union `|Y_i ∪ Y_j|`.
    pub union_size: u32,
}

impl SimilarityStats {
    /// A record representing "no relationship" (no co-raters).
    pub const NONE: SimilarityStats = SimilarityStats {
        similarity: 0.0,
        co_raters: 0,
        significance: 0,
        union_size: 0,
    };

    /// Normalised weighted significance `Ŝ_{i,j} = S_{i,j} / |Y_i ∪ Y_j|` (Definition 4).
    /// Zero when the union is empty.
    pub fn normalized_significance(&self) -> f64 {
        if self.union_size == 0 {
            0.0
        } else {
            self.significance as f64 / self.union_size as f64
        }
    }
}

/// Computes the item–item similarity together with significance statistics for `(i, j)`.
///
/// This is a single linear merge over the two item profiles (which are sorted by user id),
/// so the cost is `O(|Y_i| + |Y_j|)`.
pub fn item_similarity_stats(
    matrix: &RatingMatrix,
    i: ItemId,
    j: ItemId,
    metric: SimilarityMetric,
) -> SimilarityStats {
    let yi = matrix.item_profile(i);
    let yj = matrix.item_profile(j);
    if yi.is_empty() || yj.is_empty() {
        return SimilarityStats {
            union_size: (yi.len() + yj.len()) as u32,
            ..SimilarityStats::NONE
        };
    }

    let i_avg = matrix.item_average(i);
    let j_avg = matrix.item_average(j);

    // Accumulators for the different metrics over co-rating users.
    let mut dot = 0.0f64;
    let mut num = 0.0f64;
    let mut co_raters = 0u32;
    let mut significance = 0u32;
    let mut co_i = Vec::new();
    let mut co_j = Vec::new();

    let (mut a, mut b) = (0usize, 0usize);
    while a < yi.len() && b < yj.len() {
        match yi[a].user.cmp(&yj[b].user) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                let u = yi[a].user;
                let ri = yi[a].value;
                let rj = yj[b].value;
                co_raters += 1;

                // Definition 2: mutual like (both >= item average) or mutual dislike.
                let likes_i = ri >= i_avg;
                let likes_j = rj >= j_avg;
                if likes_i == likes_j {
                    significance += 1;
                }

                match metric {
                    SimilarityMetric::AdjustedCosine => {
                        let u_avg = matrix.user_average(u);
                        num += (ri - u_avg) * (rj - u_avg);
                    }
                    SimilarityMetric::Cosine => {
                        dot += ri * rj;
                    }
                    SimilarityMetric::Pearson => {
                        co_i.push(ri);
                        co_j.push(rj);
                    }
                }
                a += 1;
                b += 1;
            }
        }
    }

    let union_size = (yi.len() + yj.len()) as u32 - co_raters;
    if co_raters == 0 {
        return SimilarityStats {
            similarity: 0.0,
            co_raters,
            significance,
            union_size,
        };
    }

    let similarity = match metric {
        SimilarityMetric::AdjustedCosine => {
            // Denominator runs over *all* raters of each item, centred by each rater's
            // user average — Equation 6 of the paper.
            let den_i: f64 = yi
                .iter()
                .map(|e| {
                    let d = e.value - matrix.user_average(e.user);
                    d * d
                })
                .sum::<f64>()
                .sqrt();
            let den_j: f64 = yj
                .iter()
                .map(|e| {
                    let d = e.value - matrix.user_average(e.user);
                    d * d
                })
                .sum::<f64>()
                .sqrt();
            safe_ratio(num, den_i * den_j)
        }
        SimilarityMetric::Cosine => {
            let den_i: f64 = yi.iter().map(|e| e.value * e.value).sum::<f64>().sqrt();
            let den_j: f64 = yj.iter().map(|e| e.value * e.value).sum::<f64>().sqrt();
            safe_ratio(dot, den_i * den_j)
        }
        SimilarityMetric::Pearson => {
            let n = co_i.len() as f64;
            let mean_i = co_i.iter().sum::<f64>() / n;
            let mean_j = co_j.iter().sum::<f64>() / n;
            let mut num = 0.0;
            let mut di = 0.0;
            let mut dj = 0.0;
            for k in 0..co_i.len() {
                let a = co_i[k] - mean_i;
                let b = co_j[k] - mean_j;
                num += a * b;
                di += a * a;
                dj += b * b;
            }
            safe_ratio(num, (di * dj).sqrt())
        }
    };

    SimilarityStats {
        similarity: clamp_similarity(similarity),
        co_raters,
        significance,
        union_size,
    }
}

/// Item–item similarity only (convenience wrapper around [`item_similarity_stats`]).
pub fn item_similarity(
    matrix: &RatingMatrix,
    i: ItemId,
    j: ItemId,
    metric: SimilarityMetric,
) -> f64 {
    item_similarity_stats(matrix, i, j, metric).similarity
}

/// User–user similarity of Equation 1 (Algorithm 1, Phase 1): ratings are centred by the
/// *item* average and the sums run over the items co-rated by both users.
pub fn user_similarity(matrix: &RatingMatrix, a: UserId, b: UserId) -> f64 {
    let xa = matrix.user_profile(a);
    let xb = matrix.user_profile(b);
    if xa.is_empty() || xb.is_empty() {
        return 0.0;
    }

    let mut num = 0.0f64;
    let mut den_a = 0.0f64;
    let mut den_b = 0.0f64;

    let (mut p, mut q) = (0usize, 0usize);
    while p < xa.len() && q < xb.len() {
        match xa[p].item.cmp(&xb[q].item) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                let i_avg = matrix.item_average(xa[p].item);
                let da = xa[p].value - i_avg;
                let db = xb[q].value - i_avg;
                num += da * db;
                den_a += da * da;
                den_b += db * db;
                p += 1;
                q += 1;
            }
        }
    }

    clamp_similarity(safe_ratio(num, (den_a * den_b).sqrt()))
}

/// Number of items co-rated by two users.
pub fn co_rated_items(matrix: &RatingMatrix, a: UserId, b: UserId) -> usize {
    let xa = matrix.user_profile(a);
    let xb = matrix.user_profile(b);
    let (mut p, mut q, mut n) = (0usize, 0usize, 0usize);
    while p < xa.len() && q < xb.len() {
        match xa[p].item.cmp(&xb[q].item) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                p += 1;
                q += 1;
            }
        }
    }
    n
}

#[inline]
fn safe_ratio(num: f64, den: f64) -> f64 {
    if den.abs() < 1e-12 || !den.is_finite() || !num.is_finite() {
        0.0
    } else {
        num / den
    }
}

#[inline]
fn clamp_similarity(s: f64) -> f64 {
    if s.is_finite() {
        s.clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RatingMatrixBuilder;
    use proptest::prelude::*;

    /// The Figure 1(a) scenario: five users, three movies, two books.
    /// Interstellar and The Forever War share no raters, but Inception bridges them.
    fn fig1a() -> (RatingMatrix, ItemId, ItemId, ItemId) {
        // items: 0 Interstellar, 1 Inception, 2 The Martian, 3 The Forever War, 4 Ender's Game
        let mut b = RatingMatrixBuilder::new();
        // Alice rates movies only
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 2, 4.0).unwrap();
        // Bob rates Interstellar + Inception + one book
        b.push_parts(1, 0, 5.0).unwrap();
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(1, 4, 4.0).unwrap();
        // Cecilia rates Inception and The Forever War
        b.push_parts(2, 1, 4.0).unwrap();
        b.push_parts(2, 3, 5.0).unwrap();
        // Dave rates The Martian
        b.push_parts(3, 2, 2.0).unwrap();
        // Eve rates Ender's Game
        b.push_parts(4, 4, 3.0).unwrap();
        (b.build().unwrap(), ItemId(0), ItemId(1), ItemId(3))
    }

    #[test]
    fn no_common_raters_gives_zero_similarity() {
        let (m, interstellar, _inception, forever_war) = fig1a();
        let stats = item_similarity_stats(
            &m,
            interstellar,
            forever_war,
            SimilarityMetric::AdjustedCosine,
        );
        assert_eq!(stats.similarity, 0.0);
        assert_eq!(stats.co_raters, 0);
        assert_eq!(stats.significance, 0);
    }

    #[test]
    fn bridge_item_has_nonzero_similarity_with_both_endpoints() {
        let (m, interstellar, inception, forever_war) = fig1a();
        let s1 = item_similarity_stats(
            &m,
            interstellar,
            inception,
            SimilarityMetric::AdjustedCosine,
        );
        let s2 =
            item_similarity_stats(&m, inception, forever_war, SimilarityMetric::AdjustedCosine);
        assert!(s1.co_raters >= 1);
        assert!(s2.co_raters >= 1);
        // Significance counts mutual like/dislike; Bob likes both Interstellar and Inception.
        assert!(s1.significance >= 1);
        // Cecilia rates Inception below and The Forever War above their respective
        // averages, so the pair has a co-rater but no mutual like/dislike.
        assert_eq!(s2.significance, 0);
    }

    #[test]
    fn cosine_of_identical_columns_is_one() {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..4u32 {
            b.push_parts(u, 0, (u + 1) as f64).unwrap();
            b.push_parts(u, 1, (u + 1) as f64).unwrap();
        }
        let m = b.build().unwrap();
        let s = item_similarity(&m, ItemId(0), ItemId(1), SimilarityMetric::Cosine);
        assert!((s - 1.0).abs() < 1e-9);
        let p = item_similarity(&m, ItemId(0), ItemId(1), SimilarityMetric::Pearson);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_anticorrelated_columns_is_minus_one() {
        let mut b = RatingMatrixBuilder::new();
        let vals = [1.0, 2.0, 4.0, 5.0];
        for (u, &v) in vals.iter().enumerate() {
            b.push_parts(u as u32, 0, v).unwrap();
            b.push_parts(u as u32, 1, 6.0 - v).unwrap();
        }
        let m = b.build().unwrap();
        let p = item_similarity(&m, ItemId(0), ItemId(1), SimilarityMetric::Pearson);
        assert!((p + 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjusted_cosine_detects_shared_preference_direction() {
        // Users with different rating scales but the same relative preference.
        let mut b = RatingMatrixBuilder::new();
        // user 0: loves both items relative to their average
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 5.0).unwrap();
        b.push_parts(0, 2, 1.0).unwrap();
        // user 1: also prefers items 0 and 1 over item 2, on a lower scale
        b.push_parts(1, 0, 4.0).unwrap();
        b.push_parts(1, 1, 4.0).unwrap();
        b.push_parts(1, 2, 2.0).unwrap();
        let m = b.build().unwrap();
        let s01 = item_similarity(&m, ItemId(0), ItemId(1), SimilarityMetric::AdjustedCosine);
        let s02 = item_similarity(&m, ItemId(0), ItemId(2), SimilarityMetric::AdjustedCosine);
        assert!(
            s01 > 0.0,
            "mutually liked items should be positively similar, got {s01}"
        );
        assert!(
            s02 < 0.0,
            "liked vs disliked items should be negatively similar, got {s02}"
        );
        assert!(s01 > s02);
    }

    #[test]
    fn user_similarity_matches_shared_taste() {
        let mut b = RatingMatrixBuilder::new();
        // users 0 and 1 agree, user 2 disagrees
        for item in 0..4u32 {
            b.push_parts(0, item, if item % 2 == 0 { 5.0 } else { 1.0 })
                .unwrap();
            b.push_parts(1, item, if item % 2 == 0 { 4.0 } else { 2.0 })
                .unwrap();
            b.push_parts(2, item, if item % 2 == 0 { 1.0 } else { 5.0 })
                .unwrap();
        }
        let m = b.build().unwrap();
        let agree = user_similarity(&m, UserId(0), UserId(1));
        let disagree = user_similarity(&m, UserId(0), UserId(2));
        assert!(
            agree > 0.5,
            "agreeing users should have high similarity, got {agree}"
        );
        assert!(
            disagree < -0.5,
            "disagreeing users should have negative similarity, got {disagree}"
        );
        assert_eq!(co_rated_items(&m, UserId(0), UserId(1)), 4);
    }

    #[test]
    fn user_similarity_with_empty_profile_is_zero() {
        let mut b = RatingMatrixBuilder::new().with_dimensions(3, 2);
        b.push_parts(0, 0, 4.0).unwrap();
        let m = b.build().unwrap();
        assert_eq!(user_similarity(&m, UserId(0), UserId(2)), 0.0);
        assert_eq!(co_rated_items(&m, UserId(0), UserId(2)), 0);
    }

    #[test]
    fn stats_union_and_normalized_significance() {
        let (m, _interstellar, inception, forever_war) = fig1a();
        let s = item_similarity_stats(&m, inception, forever_war, SimilarityMetric::AdjustedCosine);
        // Inception rated by Bob and Cecilia; Forever War by Cecilia only -> union = 2.
        assert_eq!(s.union_size, 2);
        assert_eq!(s.co_raters, 1);
        assert!(s.normalized_significance() >= 0.0 && s.normalized_significance() <= 1.0);
        assert_eq!(SimilarityStats::NONE.normalized_significance(), 0.0);
    }

    #[test]
    fn default_metric_is_adjusted_cosine() {
        assert_eq!(
            SimilarityMetric::default(),
            SimilarityMetric::AdjustedCosine
        );
    }

    proptest! {
        /// Similarities are symmetric and bounded for every metric on random matrices.
        #[test]
        fn similarity_symmetric_and_bounded(
            ratings in proptest::collection::vec((0u32..12, 0u32..10, 1u32..=5), 1..120),
            metric_ix in 0usize..3,
        ) {
            let metric = [SimilarityMetric::AdjustedCosine, SimilarityMetric::Cosine, SimilarityMetric::Pearson][metric_ix];
            let mut b = RatingMatrixBuilder::new();
            for (u, i, v) in ratings {
                b.push_parts(u, i, v as f64).unwrap();
            }
            let m = b.build().unwrap();
            for i in 0..m.n_items().min(6) as u32 {
                for j in 0..m.n_items().min(6) as u32 {
                    let sij = item_similarity_stats(&m, ItemId(i), ItemId(j), metric);
                    let sji = item_similarity_stats(&m, ItemId(j), ItemId(i), metric);
                    prop_assert!((sij.similarity - sji.similarity).abs() < 1e-9);
                    prop_assert!(sij.similarity >= -1.0 - 1e-9 && sij.similarity <= 1.0 + 1e-9);
                    prop_assert_eq!(sij.co_raters, sji.co_raters);
                    prop_assert_eq!(sij.significance, sji.significance);
                    prop_assert!(sij.significance <= sij.co_raters);
                    prop_assert!(sij.co_raters <= sij.union_size || sij.union_size == 0);
                }
            }
        }

        /// User similarity is symmetric and bounded.
        #[test]
        fn user_similarity_symmetric(
            ratings in proptest::collection::vec((0u32..8, 0u32..8, 1u32..=5), 1..80),
        ) {
            let mut b = RatingMatrixBuilder::new();
            for (u, i, v) in ratings {
                b.push_parts(u, i, v as f64).unwrap();
            }
            let m = b.build().unwrap();
            for a in 0..m.n_users().min(5) as u32 {
                for c in 0..m.n_users().min(5) as u32 {
                    let sab = user_similarity(&m, UserId(a), UserId(c));
                    let sba = user_similarity(&m, UserId(c), UserId(a));
                    prop_assert!((sab - sba).abs() < 1e-9);
                    prop_assert!((-1.0..=1.0).contains(&sab));
                }
            }
        }
    }
}
