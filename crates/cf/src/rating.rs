//! Rating events and logical timesteps.
//!
//! A rating is the triple `(user, item, value)` plus a logical [`Timestep`] used by the
//! temporal predictor of Equation 7 in the paper ("the timestep is a logical time
//! corresponding to the actual timestamp of an event", §4.4).

use crate::ids::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Logical time at which a rating was given.
///
/// Timesteps are monotone per user; the absolute scale is irrelevant, only differences
/// `t - t_{A,j}` enter the temporal decay `e^{-α (t - t_{A,j})}` of Equation 7.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestep(pub u32);

impl Timestep {
    /// Difference `self - earlier`, saturating at zero (ratings in the future of `self`
    /// contribute with no decay rather than exponential amplification).
    #[inline]
    pub fn elapsed_since(self, earlier: Timestep) -> u32 {
        self.0.saturating_sub(earlier.0)
    }
}

impl From<u32> for Timestep {
    fn from(v: u32) -> Self {
        Timestep(v)
    }
}

/// A single rating event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// The user who rated.
    pub user: UserId,
    /// The rated item.
    pub item: ItemId,
    /// Rating value. The paper uses the 1–5 Amazon / MovieLens star scale, but the code
    /// accepts any finite value; the scale bounds only matter for MAE normalisation.
    pub value: f64,
    /// Logical time of the rating event.
    pub timestep: Timestep,
}

impl Rating {
    /// Creates a rating with timestep 0 (convenient in tests and non-temporal workloads).
    pub fn new(user: UserId, item: ItemId, value: f64) -> Self {
        Rating {
            user,
            item,
            value,
            timestep: Timestep(0),
        }
    }

    /// Creates a rating with an explicit logical timestep.
    pub fn at(user: UserId, item: ItemId, value: f64, timestep: Timestep) -> Self {
        Rating {
            user,
            item,
            value,
            timestep,
        }
    }
}

/// The inclusive rating scale of a dataset, used to bound predictions and normalise error
/// metrics (`0 < MAE < r_max - r_min`, §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatingScale {
    /// Minimum expressible rating (1.0 for Amazon/MovieLens).
    pub min: f64,
    /// Maximum expressible rating (5.0 for Amazon/MovieLens).
    pub max: f64,
}

impl RatingScale {
    /// The 1–5 star scale used by both datasets in the paper.
    pub const FIVE_STAR: RatingScale = RatingScale { min: 1.0, max: 5.0 };

    /// Creates a scale, panicking if `min >= max` or either bound is not finite.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "invalid rating scale [{min}, {max}]"
        );
        RatingScale { min, max }
    }

    /// Clamps a raw prediction into the expressible range.
    #[inline]
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.min, self.max)
    }

    /// Width of the scale (`r_max - r_min`), the upper bound on MAE.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Midpoint of the scale, used as a last-resort prediction when no information exists.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.min + self.max)
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        RatingScale::FIVE_STAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_elapsed_saturates() {
        assert_eq!(Timestep(10).elapsed_since(Timestep(4)), 6);
        assert_eq!(Timestep(4).elapsed_since(Timestep(10)), 0);
        assert_eq!(Timestep::from(3u32), Timestep(3));
    }

    #[test]
    fn rating_constructors_set_fields() {
        let r = Rating::new(UserId(1), ItemId(2), 4.0);
        assert_eq!(r.timestep, Timestep(0));
        let r = Rating::at(UserId(1), ItemId(2), 4.0, Timestep(7));
        assert_eq!(r.timestep, Timestep(7));
        assert_eq!(r.user, UserId(1));
        assert_eq!(r.item, ItemId(2));
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn scale_clamps_and_measures() {
        let s = RatingScale::FIVE_STAR;
        assert_eq!(s.clamp(7.3), 5.0);
        assert_eq!(s.clamp(-2.0), 1.0);
        assert_eq!(s.clamp(3.2), 3.2);
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.midpoint(), 3.0);
        assert_eq!(RatingScale::default(), RatingScale::FIVE_STAR);
    }

    #[test]
    #[should_panic(expected = "invalid rating scale")]
    fn scale_rejects_inverted_bounds() {
        let _ = RatingScale::new(5.0, 1.0);
    }
}
