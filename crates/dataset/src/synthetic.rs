//! Synthetic cross-domain rating traces.
//!
//! The generator follows a latent-factor model: every user and every item owns a taste /
//! topic vector, and the "true" affinity of a user for an item is the dot product of the
//! two, rescaled to the rating scale and perturbed by noise. Crucially, a user's taste
//! vector is *the same in both domains* — that is precisely the cross-domain structure
//! that makes heterogeneous recommendation possible and that the real Amazon overlap
//! users exhibit. Users are split into three groups:
//!
//! * source-only users (rate only source-domain items),
//! * target-only users (rate only target-domain items),
//! * overlap users / straddlers (rate in both domains).
//!
//! The number of straddlers directly controls how many bridge items and meta-paths exist,
//! which is what the overlap experiment (Figure 9) sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xmap_cf::rating::RatingScale;
use xmap_cf::{DomainId, ItemId, RatingMatrix, RatingMatrixBuilder, UserId};

/// Configuration of the synthetic cross-domain trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrossDomainConfig {
    /// Number of items in the source domain (movies in the paper's running example).
    pub n_source_items: usize,
    /// Number of items in the target domain (books).
    pub n_target_items: usize,
    /// Users who rate only in the source domain.
    pub n_source_only_users: usize,
    /// Users who rate only in the target domain.
    pub n_target_only_users: usize,
    /// Straddlers: users who rate in both domains.
    pub n_overlap_users: usize,
    /// Ratings each user gives per domain they are active in.
    pub ratings_per_user: usize,
    /// Dimension of the latent taste vectors.
    pub latent_dim: usize,
    /// Standard deviation of the rating noise (in stars).
    pub noise: f64,
    /// RNG seed; the same seed always produces the same trace.
    pub seed: u64,
    /// Popularity skew of item selection. `0.0` keeps the historical uniform
    /// sampling (byte-identical to traces generated before this knob existed);
    /// positive values draw items Zipf-like with weight `1 / (rank + 1)^skew`,
    /// where an item's rank is its position in the domain's ascending id order —
    /// low ids become the popularity head. The hot-shard replication policy of
    /// the sharded model keys off exactly this kind of head.
    pub popularity_skew: f64,
}

impl Default for CrossDomainConfig {
    fn default() -> Self {
        CrossDomainConfig {
            n_source_items: 120,
            n_target_items: 150,
            n_source_only_users: 80,
            n_target_only_users: 80,
            n_overlap_users: 60,
            ratings_per_user: 15,
            latent_dim: 4,
            noise: 0.35,
            seed: 7,
            popularity_skew: 0.0,
        }
    }
}

impl CrossDomainConfig {
    /// A smaller configuration for quick tests and examples.
    pub fn small() -> Self {
        CrossDomainConfig {
            n_source_items: 40,
            n_target_items: 50,
            n_source_only_users: 25,
            n_target_only_users: 25,
            n_overlap_users: 20,
            ratings_per_user: 10,
            latent_dim: 3,
            noise: 0.3,
            seed: 13,
            popularity_skew: 0.0,
        }
    }

    /// Total number of users the trace will contain.
    pub fn n_users(&self) -> usize {
        self.n_source_only_users + self.n_target_only_users + self.n_overlap_users
    }

    /// Total number of items the trace will contain.
    pub fn n_items(&self) -> usize {
        self.n_source_items + self.n_target_items
    }
}

/// A generated cross-domain dataset: the rating matrix plus the user-group bookkeeping
/// needed by the evaluation protocols.
#[derive(Clone, Debug)]
pub struct CrossDomainDataset {
    /// The aggregated rating matrix (both domains, item domains declared).
    pub matrix: RatingMatrix,
    /// Users active only in the source domain.
    pub source_only_users: Vec<UserId>,
    /// Users active only in the target domain.
    pub target_only_users: Vec<UserId>,
    /// Straddlers, active in both domains.
    pub overlap_users: Vec<UserId>,
    /// The configuration the dataset was generated from.
    pub config: CrossDomainConfig,
    /// Hidden ground-truth affinities used by tests: `affinity(user, item)` before noise.
    user_factors: Vec<Vec<f64>>,
    item_factors: Vec<Vec<f64>>,
}

impl CrossDomainDataset {
    /// Generates a dataset from the configuration.
    pub fn generate(config: CrossDomainConfig) -> Self {
        assert!(
            config.n_source_items > 0 && config.n_target_items > 0,
            "domains must be non-empty"
        );
        assert!(config.latent_dim > 0, "latent dimension must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = RatingScale::FIVE_STAR;

        let n_users = config.n_users();
        let n_items = config.n_items();
        let user_factors: Vec<Vec<f64>> = (0..n_users)
            .map(|_| random_unit_vector(&mut rng, config.latent_dim))
            .collect();
        let item_factors: Vec<Vec<f64>> = (0..n_items)
            .map(|_| random_unit_vector(&mut rng, config.latent_dim))
            .collect();

        // User groups by index range.
        let source_only_users: Vec<UserId> =
            (0..config.n_source_only_users as u32).map(UserId).collect();
        let target_only_users: Vec<UserId> = (config.n_source_only_users as u32
            ..(config.n_source_only_users + config.n_target_only_users) as u32)
            .map(UserId)
            .collect();
        let overlap_users: Vec<UserId> = ((config.n_source_only_users + config.n_target_only_users)
            as u32..n_users as u32)
            .map(UserId)
            .collect();

        let mut builder = RatingMatrixBuilder::with_scale(scale).with_dimensions(n_users, n_items);
        let source_items: Vec<ItemId> = (0..config.n_source_items as u32).map(ItemId).collect();
        let target_items: Vec<ItemId> = (config.n_source_items as u32..n_items as u32)
            .map(ItemId)
            .collect();

        let emit = |builder: &mut RatingMatrixBuilder,
                    rng: &mut StdRng,
                    user: UserId,
                    items: &[ItemId],
                    timestep_base: u32| {
            let mut chosen = sample_without_replacement(
                rng,
                items,
                config.ratings_per_user,
                config.popularity_skew,
            );
            chosen.sort_unstable();
            for (ord, item) in chosen.into_iter().enumerate() {
                let affinity = dot(&user_factors[user.index()], &item_factors[item.index()]);
                let noise = gaussian(rng) * config.noise;
                let value = (3.0 + 2.0 * affinity + noise).round();
                let value = scale.clamp(value);
                builder
                    .push(xmap_cf::Rating::at(
                        user,
                        item,
                        value,
                        xmap_cf::Timestep(timestep_base + ord as u32),
                    ))
                    .expect("generated ratings are always finite"); // lint: panic — reviewed invariant
            }
        };

        for &u in &source_only_users {
            emit(&mut builder, &mut rng, u, &source_items, 0);
        }
        for &u in &target_only_users {
            emit(&mut builder, &mut rng, u, &target_items, 0);
        }
        for &u in &overlap_users {
            // straddlers first rate the source domain, later the target domain, giving
            // them a meaningful temporal ordering across domains
            emit(&mut builder, &mut rng, u, &source_items, 0);
            emit(
                &mut builder,
                &mut rng,
                u,
                &target_items,
                config.ratings_per_user as u32,
            );
        }

        for &i in &source_items {
            builder.set_item_domain(i, DomainId::SOURCE);
        }
        for &i in &target_items {
            builder.set_item_domain(i, DomainId::TARGET);
        }

        let matrix = builder.build().expect("generated dataset is never empty"); // lint: panic — reviewed invariant
        CrossDomainDataset {
            matrix,
            source_only_users,
            target_only_users,
            overlap_users,
            config,
            user_factors,
            item_factors,
        }
    }

    /// The noiseless ground-truth affinity of a user for an item, mapped to the rating
    /// scale. Used by tests and by sanity checks in the benches.
    pub fn true_rating(&self, user: UserId, item: ItemId) -> f64 {
        let affinity = dot(
            &self.user_factors[user.index()],
            &self.item_factors[item.index()],
        );
        RatingScale::FIVE_STAR.clamp(3.0 + 2.0 * affinity)
    }

    /// Items of the source domain.
    pub fn source_items(&self) -> Vec<ItemId> {
        self.matrix.items_in_domain(DomainId::SOURCE)
    }

    /// Items of the target domain.
    pub fn target_items(&self) -> Vec<ItemId> {
        self.matrix.items_in_domain(DomainId::TARGET)
    }
}

fn random_unit_vector(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..dim).map(|_| gaussian(rng)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn sample_without_replacement(
    rng: &mut StdRng,
    pool: &[ItemId],
    count: usize,
    skew: f64,
) -> Vec<ItemId> {
    let count = count.min(pool.len());
    // Exact zero selects the historical uniform path, which must keep consuming
    // the RNG stream identically so pre-knob traces reproduce bit-for-bit.
    // lint: float-eq — 0.0 is the sentinel for "knob unset", not a computed value.
    if skew == 0.0 {
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        // partial Fisher–Yates
        for i in 0..count {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        return indices[..count].iter().map(|&i| pool[i]).collect();
    }
    // Zipf-like weighted sampling without replacement: weight 1/(rank+1)^skew by
    // pool position (ascending item id), drawn by cumulative-weight inversion.
    let mut weights: Vec<f64> = (0..pool.len())
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(skew))
        .collect();
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    let mut chosen = Vec::with_capacity(count);
    for _ in 0..count {
        let total: f64 = weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut pick = weights.len() - 1;
        for (ix, &w) in weights.iter().enumerate() {
            if draw < w {
                pick = ix;
                break;
            }
            draw -= w;
        }
        chosen.push(pool[indices[pick]]);
        indices.remove(pick);
        weights.remove(pick);
    }
    chosen
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generated_shape_matches_config() {
        let cfg = CrossDomainConfig::small();
        let ds = CrossDomainDataset::generate(cfg);
        assert_eq!(ds.matrix.n_users(), cfg.n_users());
        assert_eq!(ds.matrix.n_items(), cfg.n_items());
        assert_eq!(ds.source_items().len(), cfg.n_source_items);
        assert_eq!(ds.target_items().len(), cfg.n_target_items);
        assert_eq!(ds.overlap_users.len(), cfg.n_overlap_users);
        assert_eq!(ds.source_only_users.len(), cfg.n_source_only_users);
        assert_eq!(ds.target_only_users.len(), cfg.n_target_only_users);
    }

    #[test]
    fn user_groups_rate_only_their_domains() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        for &u in &ds.source_only_users {
            for e in ds.matrix.user_profile(u) {
                assert_eq!(ds.matrix.item_domain(e.item), DomainId::SOURCE);
            }
        }
        for &u in &ds.target_only_users {
            for e in ds.matrix.user_profile(u) {
                assert_eq!(ds.matrix.item_domain(e.item), DomainId::TARGET);
            }
        }
        for &u in &ds.overlap_users {
            let (src, tgt) = ds.matrix.profile_by_domain(u, DomainId::SOURCE);
            assert!(!src.is_empty(), "straddler must rate the source domain");
            assert!(!tgt.is_empty(), "straddler must rate the target domain");
        }
    }

    #[test]
    fn overlap_users_match_matrix_overlap_detection() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let detected = ds
            .matrix
            .overlapping_users(&[DomainId::SOURCE, DomainId::TARGET]);
        assert_eq!(detected, ds.overlap_users);
    }

    #[test]
    fn ratings_are_on_the_five_star_scale_and_deterministic() {
        let cfg = CrossDomainConfig::small();
        let a = CrossDomainDataset::generate(cfg);
        let b = CrossDomainDataset::generate(cfg);
        assert_eq!(a.matrix.n_ratings(), b.matrix.n_ratings());
        for r in a.matrix.iter() {
            assert!((1.0..=5.0).contains(&r.value));
            assert_eq!(b.matrix.rating(r.user, r.item), Some(r.value));
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = CrossDomainDataset::generate(CrossDomainConfig {
            seed: 1,
            ..CrossDomainConfig::small()
        });
        let b = CrossDomainDataset::generate(CrossDomainConfig {
            seed: 2,
            ..CrossDomainConfig::small()
        });
        let differing = a
            .matrix
            .iter()
            .filter(|r| b.matrix.rating(r.user, r.item) != Some(r.value))
            .count();
        assert!(differing > 0, "different seeds should change the trace");
    }

    #[test]
    fn ratings_correlate_with_ground_truth() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::default());
        // observed ratings should be closer to the ground truth than a constant predictor
        let mut err_truth = 0.0;
        let mut err_const = 0.0;
        let mut n = 0.0;
        for r in ds.matrix.iter() {
            err_truth += (r.value - ds.true_rating(r.user, r.item)).abs();
            err_const += (r.value - 3.0).abs();
            n += 1.0;
        }
        assert!(
            err_truth / n < err_const / n,
            "ground truth must explain the ratings better than a constant"
        );
    }

    #[test]
    fn straddler_target_ratings_have_later_timesteps() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let u = ds.overlap_users[0];
        let (src, tgt) = ds.matrix.profile_by_domain(u, DomainId::SOURCE);
        let max_src = src.iter().map(|e| e.timestep).max().unwrap();
        let min_tgt = tgt.iter().map(|e| e.timestep).min().unwrap();
        assert!(
            min_tgt >= max_src,
            "target ratings happen after source ratings for straddlers"
        );
    }

    #[test]
    fn skewed_sampling_is_deterministic_for_a_fixed_seed() {
        let cfg = CrossDomainConfig {
            popularity_skew: 1.2,
            ..CrossDomainConfig::small()
        };
        let a = CrossDomainDataset::generate(cfg);
        let b = CrossDomainDataset::generate(cfg);
        assert_eq!(
            a.matrix, b.matrix,
            "the same seed and skew must reproduce the trace bit-for-bit"
        );
    }

    #[test]
    fn positive_skew_concentrates_ratings_on_the_low_id_head() {
        let head_mass = |skew: f64| -> f64 {
            let ds = CrossDomainDataset::generate(CrossDomainConfig {
                popularity_skew: skew,
                ..CrossDomainConfig::small()
            });
            let head = (ds.matrix.n_items() / 10).max(1);
            let head_ratings: usize = (0..head as u32)
                .map(|i| ds.matrix.item_degree(ItemId(i)))
                .sum();
            head_ratings as f64 / ds.matrix.n_ratings() as f64
        };
        let uniform = head_mass(0.0);
        let skewed = head_mass(1.5);
        assert!(
            skewed > uniform * 1.5,
            "skew 1.5 must concentrate the head: uniform {uniform:.3} vs skewed {skewed:.3}"
        );
    }

    #[test]
    fn zero_skew_reproduces_the_uniform_sampling_path() {
        // `small()` leaves the knob at 0.0; spelling it out must change nothing.
        let implicit = CrossDomainDataset::generate(CrossDomainConfig::small());
        let explicit = CrossDomainDataset::generate(CrossDomainConfig {
            popularity_skew: 0.0,
            ..CrossDomainConfig::small()
        });
        assert_eq!(implicit.matrix, explicit.matrix);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The generator never panics and always respects group sizes for a range of
        /// configurations, including degenerate ones (zero overlap, tiny domains).
        #[test]
        fn generator_respects_arbitrary_configs(
            n_src in 1usize..30,
            n_tgt in 1usize..30,
            overlap in 0usize..10,
            per_user in 1usize..8,
            seed in 0u64..50,
        ) {
            let cfg = CrossDomainConfig {
                n_source_items: n_src,
                n_target_items: n_tgt,
                n_source_only_users: 5,
                n_target_only_users: 5,
                n_overlap_users: overlap,
                ratings_per_user: per_user,
                latent_dim: 3,
                noise: 0.2,
                seed,
                popularity_skew: 0.0,
            };
            let ds = CrossDomainDataset::generate(cfg);
            prop_assert_eq!(ds.overlap_users.len(), overlap);
            prop_assert_eq!(ds.matrix.n_items(), n_src + n_tgt);
            for r in ds.matrix.iter() {
                prop_assert!((1.0..=5.0).contains(&r.value));
            }
        }
    }
}
