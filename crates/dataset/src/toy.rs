//! The Figure 1(a) toy scenario.
//!
//! Five users, three movies and three books, hand-built so that *Interstellar* and *The
//! Forever War* share no rater yet are connected by the meta-path
//! `Interstellar —Bob→ Inception —Cecilia→ The Forever War`. The scenario is used by the
//! quickstart example, by documentation, and by tests that need a minimal, fully
//! understood heterogeneous instance.
//!
//! Cecilia is the only straddler (she rates both movies and books), so Inception and the
//! books she rated are the bridge items; Interstellar sits in the NB-layer of the movie
//! domain and is reachable from the books only through meta-paths — exactly the
//! situation the paper's introduction motivates.

use xmap_cf::{DomainId, ItemId, RatingMatrix, RatingMatrixBuilder, UserId};

/// Named handles into the toy scenario.
#[derive(Clone, Debug)]
pub struct ToyScenario {
    /// The rating matrix with item domains declared (movies = SOURCE, books = TARGET).
    pub matrix: RatingMatrix,
    /// Human-readable user names, indexed by [`UserId`].
    pub user_names: Vec<&'static str>,
    /// Human-readable item names, indexed by [`ItemId`].
    pub item_names: Vec<&'static str>,
}

/// Item ids of the toy scenario, for readable test code.
pub mod items {
    use xmap_cf::ItemId;
    /// Interstellar (movie).
    pub const INTERSTELLAR: ItemId = ItemId(0);
    /// Inception (movie).
    pub const INCEPTION: ItemId = ItemId(1);
    /// The Martian (movie).
    pub const THE_MARTIAN: ItemId = ItemId(2);
    /// The Forever War (book).
    pub const THE_FOREVER_WAR: ItemId = ItemId(3);
    /// Ender's Game (book).
    pub const ENDERS_GAME: ItemId = ItemId(4);
    /// Dune (book).
    pub const DUNE: ItemId = ItemId(5);
}

/// User ids of the toy scenario.
pub mod users {
    use xmap_cf::UserId;
    /// Alice: rates movies only (cold-start in books).
    pub const ALICE: UserId = UserId(0);
    /// Bob: rates movies only; connects Interstellar and Inception.
    pub const BOB: UserId = UserId(1);
    /// Cecilia: the straddler; connects Inception with the books.
    pub const CECILIA: UserId = UserId(2);
    /// Dave: rates one movie.
    pub const DAVE: UserId = UserId(3);
    /// Eve: rates books only.
    pub const EVE: UserId = UserId(4);
}

impl ToyScenario {
    /// Builds the scenario.
    pub fn build() -> Self {
        let mut b = RatingMatrixBuilder::new();
        let ratings: [(UserId, ItemId, f64, u32); 13] = [
            // Alice loves the sci-fi movies but has never rated a book.
            (users::ALICE, items::INTERSTELLAR, 5.0, 0),
            (users::ALICE, items::THE_MARTIAN, 4.0, 1),
            // Bob connects Interstellar and Inception (movies only).
            (users::BOB, items::INTERSTELLAR, 5.0, 0),
            (users::BOB, items::INCEPTION, 5.0, 1),
            (users::BOB, items::THE_MARTIAN, 2.0, 2),
            // Cecilia is the straddler: she connects Inception with The Forever War and Dune.
            (users::CECILIA, items::INCEPTION, 5.0, 0),
            (users::CECILIA, items::THE_MARTIAN, 1.0, 1),
            (users::CECILIA, items::THE_FOREVER_WAR, 5.0, 2),
            (users::CECILIA, items::DUNE, 4.0, 3),
            // Dave adds another movie rating.
            (users::DAVE, items::THE_MARTIAN, 2.0, 0),
            // Eve rates books only; she connects The Forever War with Ender's Game.
            (users::EVE, items::THE_FOREVER_WAR, 5.0, 0),
            (users::EVE, items::ENDERS_GAME, 4.0, 1),
            (users::EVE, items::DUNE, 2.0, 2),
        ];
        for (user, item, value, t) in ratings {
            b.push_timed(user.0, item.0, value, t)
                // lint: panic — the table above is literal finite ratings.
                .expect("toy ratings are finite");
        }

        for movie in [items::INTERSTELLAR, items::INCEPTION, items::THE_MARTIAN] {
            b.set_item_domain(movie, DomainId::SOURCE);
        }
        for book in [items::THE_FOREVER_WAR, items::ENDERS_GAME, items::DUNE] {
            b.set_item_domain(book, DomainId::TARGET);
        }

        ToyScenario {
            matrix: b.build().expect("toy scenario is non-empty"), // lint: panic — reviewed invariant
            user_names: vec!["Alice", "Bob", "Cecilia", "Dave", "Eve"],
            item_names: vec![
                "Interstellar",
                "Inception",
                "The Martian",
                "The Forever War",
                "Ender's Game",
                "Dune",
            ],
        }
    }

    /// Name of a user.
    pub fn user_name(&self, user: UserId) -> &str {
        self.user_names
            .get(user.index())
            .copied()
            .unwrap_or("<unknown>")
    }

    /// Name of an item.
    pub fn item_name(&self, item: ItemId) -> &str {
        self.item_names
            .get(item.index())
            .copied()
            .unwrap_or("<unknown>")
    }
}

impl Default for ToyScenario {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_cf::similarity::{item_similarity, item_similarity_stats, SimilarityMetric};

    #[test]
    fn alice_is_cold_start_in_books() {
        let toy = ToyScenario::build();
        let (books, movies) = toy.matrix.profile_by_domain(users::ALICE, DomainId::TARGET);
        assert!(books.is_empty());
        assert_eq!(movies.len(), 2);
    }

    #[test]
    fn interstellar_and_forever_war_have_zero_standard_similarity() {
        let toy = ToyScenario::build();
        let s = item_similarity(
            &toy.matrix,
            items::INTERSTELLAR,
            items::THE_FOREVER_WAR,
            SimilarityMetric::AdjustedCosine,
        );
        assert_eq!(
            s, 0.0,
            "the paper's motivating example requires a zero direct similarity"
        );
    }

    #[test]
    fn cecilia_is_the_only_straddler() {
        let toy = ToyScenario::build();
        let overlap = toy
            .matrix
            .overlapping_users(&[DomainId::SOURCE, DomainId::TARGET]);
        assert_eq!(overlap, vec![users::CECILIA]);
    }

    #[test]
    fn the_bridging_edges_are_positive_and_significant() {
        let toy = ToyScenario::build();
        // Interstellar - Inception through Bob
        let hop1 = item_similarity_stats(
            &toy.matrix,
            items::INTERSTELLAR,
            items::INCEPTION,
            SimilarityMetric::AdjustedCosine,
        );
        assert!(hop1.similarity > 0.0);
        assert!(hop1.significance >= 1);
        // Inception - The Forever War through Cecilia
        let hop2 = item_similarity_stats(
            &toy.matrix,
            items::INCEPTION,
            items::THE_FOREVER_WAR,
            SimilarityMetric::AdjustedCosine,
        );
        assert!(hop2.similarity > 0.0);
        assert!(hop2.significance >= 1);
    }

    #[test]
    fn names_resolve() {
        let toy = ToyScenario::build();
        assert_eq!(toy.user_name(users::ALICE), "Alice");
        assert_eq!(toy.item_name(items::THE_FOREVER_WAR), "The Forever War");
        assert_eq!(toy.item_name(items::DUNE), "Dune");
        assert_eq!(toy.user_name(UserId(99)), "<unknown>");
        assert_eq!(toy.item_name(ItemId(99)), "<unknown>");
        assert_eq!(
            ToyScenario::default().matrix.n_ratings(),
            toy.matrix.n_ratings()
        );
    }
}
