//! Genre-tagged single-domain traces and the Table 2 sub-domain partition.
//!
//! §6.5 of the paper evaluates X-Map in a *homogeneous* setting by splitting the
//! MovieLens ML-20M catalogue into two sub-domains: genres are sorted by movie count and
//! allocated alternately to sub-domains `D1` and `D2`; each movie is then assigned to the
//! sub-domain with which it shares more genres (ties go to either). This module
//! implements that partition procedure verbatim and provides a synthetic genre-tagged
//! generator standing in for ML-20M.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xmap_cf::rating::RatingScale;
use xmap_cf::{DomainId, ItemId, RatingMatrix, RatingMatrixBuilder, UserId};

/// The 19 ML-20M genres plus "Other", with the approximate relative frequencies reported
/// in Table 2 (movie counts per genre). The absolute counts are irrelevant; only the
/// ordering matters for the partition.
pub const MOVIELENS_GENRES: &[(&str, usize)] = &[
    ("Drama", 13344),
    ("Comedy", 8374),
    ("Thriller", 4178),
    ("Romance", 4127),
    ("Action", 3520),
    ("Crime", 2939),
    ("Horror", 2611),
    ("Documentary", 2471),
    ("Adventure", 2329),
    ("Sci-Fi", 1743),
    ("Mystery", 1514),
    ("Fantasy", 1412),
    ("War", 1194),
    ("Children", 1139),
    ("Musical", 1036),
    ("Animation", 1027),
    ("Western", 676),
    ("Film-Noir", 330),
    ("Other", 196),
];

/// Configuration of the synthetic genre-tagged dataset.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GenreDatasetConfig {
    /// Number of items (movies).
    pub n_items: usize,
    /// Number of users.
    pub n_users: usize,
    /// Ratings per user.
    pub ratings_per_user: usize,
    /// Maximum number of genres per movie (at least 1 is always assigned).
    pub max_genres_per_item: usize,
    /// Rating noise standard deviation.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenreDatasetConfig {
    fn default() -> Self {
        GenreDatasetConfig {
            n_items: 200,
            n_users: 120,
            ratings_per_user: 20,
            max_genres_per_item: 3,
            noise: 0.35,
            seed: 21,
        }
    }
}

/// A synthetic genre-tagged single-domain dataset.
#[derive(Clone, Debug)]
pub struct GenreTaggedDataset {
    /// The rating matrix (single domain, before partitioning).
    pub matrix: RatingMatrix,
    /// `genres[item] = genre indices into` [`MOVIELENS_GENRES`].
    pub item_genres: Vec<Vec<usize>>,
    /// Configuration used to generate the dataset.
    pub config: GenreDatasetConfig,
}

impl GenreTaggedDataset {
    /// Generates a genre-tagged trace. Genres are sampled proportionally to their
    /// ML-20M frequencies; users have a latent affinity per genre so that ratings are
    /// correlated within genres (the structure that makes the genre partition a
    /// meaningful two-domain problem).
    pub fn generate(config: GenreDatasetConfig) -> Self {
        assert!(
            config.n_items > 0 && config.n_users > 0,
            "dataset must be non-empty"
        );
        assert!(
            config.max_genres_per_item >= 1,
            "items need at least one genre"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = RatingScale::FIVE_STAR;
        let n_genres = MOVIELENS_GENRES.len();
        let total_count: usize = MOVIELENS_GENRES.iter().map(|(_, c)| c).sum();

        // Assign genres to items with probability proportional to genre frequency.
        let mut item_genres: Vec<Vec<usize>> = Vec::with_capacity(config.n_items);
        for _ in 0..config.n_items {
            let n = rng.gen_range(1..=config.max_genres_per_item);
            let mut genres = Vec::with_capacity(n);
            while genres.len() < n {
                let mut pick = rng.gen_range(0..total_count);
                let mut chosen = 0usize;
                for (gi, (_, c)) in MOVIELENS_GENRES.iter().enumerate() {
                    if pick < *c {
                        chosen = gi;
                        break;
                    }
                    pick -= c;
                }
                if !genres.contains(&chosen) {
                    genres.push(chosen);
                }
            }
            genres.sort_unstable();
            item_genres.push(genres);
        }

        // Users have a preference per genre in [-1, 1].
        let user_prefs: Vec<Vec<f64>> = (0..config.n_users)
            .map(|_| (0..n_genres).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();

        let mut builder =
            RatingMatrixBuilder::with_scale(scale).with_dimensions(config.n_users, config.n_items);
        for (u, prefs) in user_prefs.iter().enumerate() {
            let mut rated = std::collections::HashSet::new();
            for t in 0..config.ratings_per_user.min(config.n_items) {
                let mut item = rng.gen_range(0..config.n_items);
                let mut guard = 0;
                while rated.contains(&item) && guard < 50 {
                    item = rng.gen_range(0..config.n_items);
                    guard += 1;
                }
                if rated.contains(&item) {
                    continue;
                }
                rated.insert(item);
                let genres = &item_genres[item];
                let affinity: f64 =
                    genres.iter().map(|&g| prefs[g]).sum::<f64>() / genres.len() as f64;
                let noise: f64 = rng.gen_range(-config.noise..config.noise);
                let value = scale.clamp((3.0 + 2.0 * affinity + noise).round());
                builder
                    .push(xmap_cf::Rating::at(
                        UserId(u as u32),
                        ItemId(item as u32),
                        value,
                        xmap_cf::Timestep(t as u32),
                    ))
                    .expect("generated ratings are finite"); // lint: panic — reviewed invariant
            }
        }

        GenreTaggedDataset {
            matrix: builder.build().expect("non-empty by construction"), // lint: panic — reviewed invariant
            item_genres,
            config,
        }
    }

    /// Applies the Table 2 partition and returns a new matrix whose items carry the two
    /// sub-domain ids, together with the partition bookkeeping.
    pub fn partition(&self) -> (RatingMatrix, GenrePartition) {
        let partition = GenrePartition::compute(&self.item_genres);
        let mut builder = RatingMatrixBuilder::with_scale(self.matrix.scale())
            .with_dimensions(self.matrix.n_users(), self.matrix.n_items());
        for r in self.matrix.iter() {
            builder.push(r).expect("copying finite ratings"); // lint: panic — reviewed invariant
        }
        for (item, &d) in partition.item_domain.iter().enumerate() {
            builder.set_item_domain(ItemId(item as u32), d);
        }
        (
            builder.build().expect("non-empty by construction"), // lint: panic — reviewed invariant
            partition,
        )
    }
}

/// The result of the Table 2 genre partition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenrePartition {
    /// Genre indices allocated to sub-domain D1 (even positions of the sorted order).
    pub d1_genres: Vec<usize>,
    /// Genre indices allocated to sub-domain D2 (odd positions of the sorted order).
    pub d2_genres: Vec<usize>,
    /// Sub-domain of every item (D1 = [`DomainId::SOURCE`], D2 = [`DomainId::TARGET`]).
    pub item_domain: Vec<DomainId>,
}

impl GenrePartition {
    /// Computes the partition from per-item genre lists, following §6.5:
    /// 1. sort genres by movie count (descending),
    /// 2. allocate alternately to D1 and D2,
    /// 3. assign each movie to the sub-domain with the larger genre overlap; ties go to D1.
    pub fn compute(item_genres: &[Vec<usize>]) -> Self {
        // Movie count per genre within *this* dataset.
        let n_genres = MOVIELENS_GENRES.len();
        let mut counts = vec![0usize; n_genres];
        for genres in item_genres {
            for &g in genres {
                counts[g] += 1;
            }
        }
        let mut order: Vec<usize> = (0..n_genres).collect();
        order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));

        let mut d1_genres = Vec::new();
        let mut d2_genres = Vec::new();
        for (pos, &g) in order.iter().enumerate() {
            if pos % 2 == 0 {
                d1_genres.push(g);
            } else {
                d2_genres.push(g);
            }
        }

        let item_domain = item_genres
            .iter()
            .map(|genres| {
                let overlap_d1 = genres.iter().filter(|g| d1_genres.contains(g)).count();
                let overlap_d2 = genres.iter().filter(|g| d2_genres.contains(g)).count();
                if overlap_d1 >= overlap_d2 {
                    DomainId::SOURCE
                } else {
                    DomainId::TARGET
                }
            })
            .collect();

        GenrePartition {
            d1_genres,
            d2_genres,
            item_domain,
        }
    }

    /// Number of items assigned to each sub-domain: `(D1, D2)`.
    pub fn domain_sizes(&self) -> (usize, usize) {
        let d1 = self
            .item_domain
            .iter()
            .filter(|&&d| d == DomainId::SOURCE)
            .count();
        (d1, self.item_domain.len() - d1)
    }

    /// Table-2-style rows: `(genre name, movie count, sub-domain label)` sorted by count
    /// within each sub-domain.
    pub fn table_rows(&self, item_genres: &[Vec<usize>]) -> Vec<(String, usize, &'static str)> {
        let n_genres = MOVIELENS_GENRES.len();
        let mut counts = vec![0usize; n_genres];
        for genres in item_genres {
            for &g in genres {
                counts[g] += 1;
            }
        }
        let mut rows = Vec::new();
        for (&genres, label) in [(&self.d1_genres, "D1"), (&self.d2_genres, "D2")]
            .iter()
            .map(|(g, l)| (g, *l))
        {
            for &g in genres {
                rows.push((MOVIELENS_GENRES[g].0.to_string(), counts[g], label));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_shape_and_scale() {
        let cfg = GenreDatasetConfig {
            n_items: 60,
            n_users: 40,
            ratings_per_user: 10,
            ..Default::default()
        };
        let ds = GenreTaggedDataset::generate(cfg);
        assert_eq!(ds.matrix.n_items(), 60);
        assert_eq!(ds.matrix.n_users(), 40);
        assert_eq!(ds.item_genres.len(), 60);
        for genres in &ds.item_genres {
            assert!(!genres.is_empty() && genres.len() <= cfg.max_genres_per_item);
        }
        for r in ds.matrix.iter() {
            assert!((1.0..=5.0).contains(&r.value));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenreDatasetConfig::default();
        let a = GenreTaggedDataset::generate(cfg);
        let b = GenreTaggedDataset::generate(cfg);
        assert_eq!(a.item_genres, b.item_genres);
        assert_eq!(a.matrix.n_ratings(), b.matrix.n_ratings());
    }

    #[test]
    fn partition_alternates_genres_by_count() {
        let ds = GenreTaggedDataset::generate(GenreDatasetConfig::default());
        let partition = GenrePartition::compute(&ds.item_genres);
        // D1 gets the most frequent genre of this dataset, D2 the second, etc.
        let mut counts = vec![0usize; MOVIELENS_GENRES.len()];
        for genres in &ds.item_genres {
            for &g in genres {
                counts[g] += 1;
            }
        }
        let top_genre = (0..counts.len())
            .max_by_key(|&g| (counts[g], usize::MAX - g))
            .unwrap();
        assert!(partition.d1_genres.contains(&top_genre));
        // the two genre sets are disjoint and together cover all genres
        for g in &partition.d1_genres {
            assert!(!partition.d2_genres.contains(g));
        }
        assert_eq!(
            partition.d1_genres.len() + partition.d2_genres.len(),
            MOVIELENS_GENRES.len()
        );
    }

    #[test]
    fn every_item_lands_in_the_subdomain_with_larger_genre_overlap() {
        let ds = GenreTaggedDataset::generate(GenreDatasetConfig::default());
        let partition = GenrePartition::compute(&ds.item_genres);
        for (item, genres) in ds.item_genres.iter().enumerate() {
            let o1 = genres
                .iter()
                .filter(|g| partition.d1_genres.contains(g))
                .count();
            let o2 = genres
                .iter()
                .filter(|g| partition.d2_genres.contains(g))
                .count();
            match partition.item_domain[item] {
                DomainId::SOURCE => assert!(o1 >= o2),
                DomainId::TARGET => assert!(o2 > o1),
                other => panic!("unexpected domain {other}"),
            }
        }
    }

    #[test]
    fn partitioned_matrix_carries_subdomain_ids() {
        let ds = GenreTaggedDataset::generate(GenreDatasetConfig {
            n_items: 80,
            ..Default::default()
        });
        let (matrix, partition) = ds.partition();
        let (d1, d2) = partition.domain_sizes();
        assert_eq!(d1 + d2, 80);
        assert!(
            d1 > 0 && d2 > 0,
            "both sub-domains should be populated (got {d1}/{d2})"
        );
        assert_eq!(matrix.items_in_domain(DomainId::SOURCE).len(), d1);
        assert_eq!(matrix.items_in_domain(DomainId::TARGET).len(), d2);
        assert_eq!(matrix.n_ratings(), ds.matrix.n_ratings());
    }

    #[test]
    fn table_rows_cover_all_genres_once() {
        let ds = GenreTaggedDataset::generate(GenreDatasetConfig::default());
        let partition = GenrePartition::compute(&ds.item_genres);
        let rows = partition.table_rows(&ds.item_genres);
        assert_eq!(rows.len(), MOVIELENS_GENRES.len());
        let d1_rows = rows.iter().filter(|(_, _, l)| *l == "D1").count();
        let d2_rows = rows.iter().filter(|(_, _, l)| *l == "D2").count();
        assert_eq!(d1_rows, partition.d1_genres.len());
        assert_eq!(d2_rows, partition.d2_genres.len());
    }
}
