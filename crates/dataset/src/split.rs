//! Train/test splits implementing the paper's evaluation scheme (§6.1).
//!
//! The protocol for the heterogeneous experiments is: partition the *overlapping* users
//! into training and test sets; for every test user hide their target-domain profile
//! (entirely for the cold-start evaluation, partially for the sparsity evaluation of
//! Figure 10) and predict the hidden ratings from their source-domain profile. The
//! overlap experiment of Figure 9 additionally restricts how many of the non-test
//! overlapping users contribute their straddling ratings to the training set.

use crate::synthetic::CrossDomainDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xmap_cf::{DomainId, Rating, RatingMatrix, UserId};

/// Configuration of a cross-domain evaluation split.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Fraction of the overlapping users held out as test users.
    pub test_fraction: f64,
    /// Number of target-domain ratings of each test user *kept in the training set*
    /// (the "auxiliary profile" of Figure 10). 0 reproduces the cold-start setting.
    pub auxiliary_profile_size: usize,
    /// Fraction of the *non-test* overlapping users whose ratings are kept in training
    /// (the "fraction of training set" axis of Figure 9). 1.0 keeps everyone.
    pub overlap_fraction: f64,
    /// RNG seed controlling which users are held out.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            test_fraction: 0.3,
            auxiliary_profile_size: 0,
            overlap_fraction: 1.0,
            seed: 99,
        }
    }
}

/// A materialised cross-domain split.
#[derive(Clone, Debug)]
pub struct CrossDomainSplit {
    /// Training matrix: everything except the hidden target-domain ratings of the test
    /// users (and except the ratings of overlap users dropped by `overlap_fraction`).
    pub train: RatingMatrix,
    /// Hidden `(user, item, true rating)` triples to predict — all in the target domain.
    pub test: Vec<Rating>,
    /// The users whose target profiles were (at least partly) hidden. Every listed
    /// user contributes **at least one** test triple: a selected user whose whole
    /// target profile fits inside the auxiliary allowance is kept fully in training
    /// and excluded here, so coverage/recall denominators count only users that are
    /// actually evaluated.
    pub test_users: Vec<UserId>,
    /// The non-test overlapping users retained as straddlers in training.
    pub training_overlap_users: Vec<UserId>,
}

impl CrossDomainSplit {
    /// Builds a split of `dataset` in which `target` is the domain whose ratings are
    /// hidden and predicted.
    pub fn build(dataset: &CrossDomainDataset, target: DomainId, config: SplitConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.test_fraction),
            "test_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.overlap_fraction),
            "overlap_fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Shuffle the overlapping users deterministically and carve out the test set.
        let mut overlap = dataset.overlap_users.clone();
        for i in (1..overlap.len()).rev() {
            let j = rng.gen_range(0..=i);
            overlap.swap(i, j);
        }
        let n_test = ((overlap.len() as f64) * config.test_fraction).round() as usize;
        let n_test = n_test.min(overlap.len());
        let test_users: Vec<UserId> = overlap[..n_test].to_vec();
        let rest: Vec<UserId> = overlap[n_test..].to_vec();
        let n_keep = ((rest.len() as f64) * config.overlap_fraction).round() as usize;
        let training_overlap_users: Vec<UserId> = rest[..n_keep.min(rest.len())].to_vec();
        let dropped_overlap: Vec<UserId> = rest[n_keep.min(rest.len())..].to_vec();

        // For each test user decide which of their target-domain ratings stay in training
        // (the auxiliary profile) and which become test ratings.
        let matrix = &dataset.matrix;
        let mut keep_in_training: std::collections::HashSet<(UserId, xmap_cf::ItemId)> =
            std::collections::HashSet::new();
        let mut test: Vec<Rating> = Vec::new();
        // Selected users whose target profile fits entirely inside the auxiliary
        // allowance contribute zero test triples; they keep their ratings and are
        // *not* test users (they would skew coverage/recall denominators otherwise).
        let mut contributing: Vec<UserId> = Vec::new();
        for &u in &test_users {
            let mut target_profile: Vec<_> = matrix
                .user_profile(u)
                .iter()
                .filter(|e| matrix.item_domain(e.item) == target)
                .copied()
                .collect();
            // keep the earliest-rated auxiliary items (they would realistically be known
            // first), hide the rest
            target_profile.sort_by_key(|e| e.timestep);
            let mut hidden = 0usize;
            for (idx, e) in target_profile.into_iter().enumerate() {
                if idx < config.auxiliary_profile_size {
                    keep_in_training.insert((u, e.item));
                } else {
                    test.push(Rating {
                        user: u,
                        item: e.item,
                        value: e.value,
                        timestep: e.timestep,
                    });
                    hidden += 1;
                }
            }
            if hidden > 0 {
                contributing.push(u);
            }
        }
        let test_users = contributing;

        let dropped: std::collections::HashSet<UserId> = dropped_overlap.into_iter().collect();
        let test_user_set: std::collections::HashSet<UserId> = test_users.iter().copied().collect();
        let train = matrix
            .filter(|r| {
                if dropped.contains(&r.user) {
                    return false;
                }
                if test_user_set.contains(&r.user) && matrix.item_domain(r.item) == target {
                    return keep_in_training.contains(&(r.user, r.item));
                }
                true
            })
            .expect("training split is never empty for non-degenerate datasets"); // lint: panic — reviewed invariant

        CrossDomainSplit {
            train,
            test,
            test_users,
            training_overlap_users,
        }
    }
}

/// A plain per-rating random holdout used by the homogeneous experiments (Table 3):
/// each rating lands in the test set independently with probability `test_fraction`.
pub fn random_holdout(
    matrix: &RatingMatrix,
    test_fraction: f64,
    seed: u64,
) -> (RatingMatrix, Vec<Rating>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut test = Vec::new();
    let mut decisions: std::collections::HashMap<(UserId, xmap_cf::ItemId), bool> =
        std::collections::HashMap::new();
    for r in matrix.iter() {
        let is_test = rng.gen_bool(test_fraction);
        decisions.insert((r.user, r.item), is_test);
        if is_test {
            test.push(r);
        }
    }
    let train = matrix
        .filter(|r| !decisions.get(&(r.user, r.item)).copied().unwrap_or(false))
        .expect("training split is never empty for non-degenerate inputs"); // lint: panic — reviewed invariant
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{CrossDomainConfig, CrossDomainDataset};

    fn dataset() -> CrossDomainDataset {
        CrossDomainDataset::generate(CrossDomainConfig::small())
    }

    #[test]
    fn cold_start_split_hides_entire_target_profile() {
        let ds = dataset();
        let split = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
        assert!(!split.test_users.is_empty());
        assert!(!split.test.is_empty());
        for &u in &split.test_users {
            let (target, source) = split.train.profile_by_domain(u, DomainId::TARGET);
            assert!(
                target.is_empty(),
                "cold-start test user {u} still has target ratings in training"
            );
            assert!(
                !source.is_empty(),
                "test user {u} must keep their source profile"
            );
        }
        // every test rating is a target-domain rating of a test user with the true value
        for r in &split.test {
            assert!(split.test_users.contains(&r.user));
            assert_eq!(ds.matrix.item_domain(r.item), DomainId::TARGET);
            assert_eq!(ds.matrix.rating(r.user, r.item), Some(r.value));
            assert_eq!(split.train.rating(r.user, r.item), None);
        }
    }

    #[test]
    fn auxiliary_profile_keeps_requested_number_of_ratings() {
        let ds = dataset();
        for aux in [1usize, 3, 6] {
            let split = CrossDomainSplit::build(
                &ds,
                DomainId::TARGET,
                SplitConfig {
                    auxiliary_profile_size: aux,
                    ..Default::default()
                },
            );
            for &u in &split.test_users {
                let full: usize = ds
                    .matrix
                    .user_profile(u)
                    .iter()
                    .filter(|e| ds.matrix.item_domain(e.item) == DomainId::TARGET)
                    .count();
                let kept = split
                    .train
                    .user_profile(u)
                    .iter()
                    .filter(|e| split.train.item_domain(e.item) == DomainId::TARGET)
                    .count();
                assert_eq!(kept, aux.min(full));
            }
        }
    }

    #[test]
    fn overlap_fraction_controls_training_straddlers() {
        let ds = dataset();
        let full = CrossDomainSplit::build(
            &ds,
            DomainId::TARGET,
            SplitConfig {
                overlap_fraction: 1.0,
                ..Default::default()
            },
        );
        let half = CrossDomainSplit::build(
            &ds,
            DomainId::TARGET,
            SplitConfig {
                overlap_fraction: 0.5,
                ..Default::default()
            },
        );
        assert!(half.training_overlap_users.len() < full.training_overlap_users.len());
        assert!(half.train.n_ratings() < full.train.n_ratings());
        // test users are identical because the seed and test fraction are identical
        assert_eq!(half.test_users, full.test_users);
    }

    #[test]
    fn every_test_user_contributes_at_least_one_test_triple() {
        let ds = dataset();
        let max_target_profile = ds
            .overlap_users
            .iter()
            .map(|&u| {
                ds.matrix
                    .user_profile(u)
                    .iter()
                    .filter(|e| ds.matrix.item_domain(e.item) == DomainId::TARGET)
                    .count()
            })
            .max()
            .unwrap();
        // With the auxiliary allowance covering everyone's full target profile, no
        // selected user has anything to predict — the regression is a non-empty
        // `test_users` paired with an empty `test`, which skews coverage/recall
        // denominators downstream.
        let saturated = CrossDomainSplit::build(
            &ds,
            DomainId::TARGET,
            SplitConfig {
                auxiliary_profile_size: max_target_profile,
                ..Default::default()
            },
        );
        assert!(saturated.test.is_empty());
        assert!(
            saturated.test_users.is_empty(),
            "users with zero hidden ratings must not count as test users"
        );
        // And at every auxiliary size, the test-user list is exactly the set of users
        // appearing in the test triples.
        for aux in 0..=max_target_profile {
            let split = CrossDomainSplit::build(
                &ds,
                DomainId::TARGET,
                SplitConfig {
                    auxiliary_profile_size: aux,
                    ..Default::default()
                },
            );
            let mut users_in_test: Vec<UserId> = split.test.iter().map(|r| r.user).collect();
            users_in_test.sort_unstable();
            users_in_test.dedup();
            let mut listed = split.test_users.clone();
            listed.sort_unstable();
            assert_eq!(listed, users_in_test, "aux={aux}");
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = dataset();
        let a = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
        let b = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
        assert_eq!(a.test_users, b.test_users);
        assert_eq!(a.test.len(), b.test.len());
        let c = CrossDomainSplit::build(
            &ds,
            DomainId::TARGET,
            SplitConfig {
                seed: 12345,
                ..Default::default()
            },
        );
        // a different seed typically selects different users (not guaranteed, but for
        // this dataset size the probability of an identical shuffle is negligible)
        assert_ne!(a.test_users, c.test_users);
    }

    #[test]
    fn split_works_in_the_reverse_direction() {
        let ds = dataset();
        let split = CrossDomainSplit::build(&ds, DomainId::SOURCE, SplitConfig::default());
        for r in &split.test {
            assert_eq!(ds.matrix.item_domain(r.item), DomainId::SOURCE);
        }
        for &u in &split.test_users {
            let (hidden, kept) = split.train.profile_by_domain(u, DomainId::SOURCE);
            assert!(hidden.is_empty());
            assert!(!kept.is_empty());
        }
    }

    #[test]
    fn random_holdout_partitions_ratings() {
        let ds = dataset();
        let (train, test) = random_holdout(&ds.matrix, 0.25, 7);
        assert_eq!(train.n_ratings() + test.len(), ds.matrix.n_ratings());
        for r in &test {
            assert_eq!(train.rating(r.user, r.item), None);
            assert_eq!(ds.matrix.rating(r.user, r.item), Some(r.value));
        }
        let frac = test.len() as f64 / ds.matrix.n_ratings() as f64;
        assert!(
            (frac - 0.25).abs() < 0.1,
            "holdout fraction {frac} too far from 0.25"
        );
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn invalid_test_fraction_panics() {
        let ds = dataset();
        let _ = CrossDomainSplit::build(
            &ds,
            DomainId::TARGET,
            SplitConfig {
                test_fraction: 1.5,
                ..Default::default()
            },
        );
    }
}
