//! Minimal CSV import/export for rating traces.
//!
//! The format is the conventional `user_id,item_id,rating,timestamp[,domain]` layout used
//! by the Amazon and MovieLens dumps the paper evaluates on, so real traces can be loaded
//! when they are available. The writer emits the same format, which makes the synthetic
//! datasets exportable for inspection or reuse outside this workspace.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use xmap_cf::{DomainId, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, Timestep, UserId};

/// The pseudo-path reported for the in-memory reader/writer entry points, which have
/// no file behind them.
const MEMORY_PATH: &str = "<memory>";

/// Errors raised by CSV import/export. The `Io` variant carries the path and the
/// operation that failed — the same shape as `xmap_core::XMapError::Io` and
/// `xmap_store::StoreError::Io`, so every layer of the workspace reports I/O
/// failures identically.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure, with the file and the operation that failed.
    Io {
        /// The file the operation touched (`<memory>` for the in-memory entry points).
        path: PathBuf,
        /// What the importer/exporter was doing when the failure happened.
        context: String,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The resulting matrix could not be built.
    Build(xmap_cf::CfError),
}

impl IoError {
    fn io(path: &Path, context: impl Into<String>, source: std::io::Error) -> Self {
        IoError::Io {
            path: path.to_path_buf(),
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io {
                path,
                context,
                source,
            } => write!(f, "io error at {}: {context}: {source}", path.display()),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IoError::Build(e) => write!(f, "could not build rating matrix: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            IoError::Parse { .. } => None,
            IoError::Build(e) => Some(e),
        }
    }
}

/// Reads ratings from CSV text: `user,item,rating,timestep[,domain]`, `#`-prefixed lines
/// and blank lines are skipped. Returns the built matrix.
pub fn read_ratings_csv<R: Read>(reader: R) -> Result<RatingMatrix, IoError> {
    read_ratings_from(reader, Path::new(MEMORY_PATH))
}

/// The shared reader loop: one reusable line buffer, the 1-based line counter
/// threaded through every error, and `path` naming the source in I/O failures.
fn read_ratings_from<R: Read>(reader: R, path: &Path) -> Result<RatingMatrix, IoError> {
    let mut reader = BufReader::new(reader);
    let mut builder = RatingMatrixBuilder::new();
    let mut domains: Vec<(ItemId, DomainId)> = Vec::new();
    // First declaration per item, for conflict reporting: a re-declaration with a
    // *different* domain must fail loudly instead of silently last-winning.
    let mut declared: std::collections::HashMap<ItemId, (DomainId, usize)> =
        std::collections::HashMap::new();
    // One buffer reused across lines: `read_line` appends, so each iteration clears
    // it instead of allocating a fresh `String` per line (as `lines()` would).
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        line_no += 1;
        let n_read = reader
            .read_line(&mut line)
            .map_err(|e| IoError::io(path, format!("read line {line_no}"), e))?;
        if n_read == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 3 {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("expected at least 3 fields, got {}", fields.len()),
            });
        }
        let user: u32 = fields[0].parse().map_err(|e| IoError::Parse {
            line: line_no,
            message: format!("bad user id `{}`: {e}", fields[0]),
        })?;
        let item: u32 = fields[1].parse().map_err(|e| IoError::Parse {
            line: line_no,
            message: format!("bad item id `{}`: {e}", fields[1]),
        })?;
        let value: f64 = fields[2].parse().map_err(|e| IoError::Parse {
            line: line_no,
            message: format!("bad rating `{}`: {e}", fields[2]),
        })?;
        // `NaN`/`inf`/`-inf` parse as valid f64 but would poison every similarity
        // statistic downstream; reject them here with the offending line.
        if !value.is_finite() {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("non-finite rating `{}`", fields[2]),
            });
        }
        let timestep: u32 = if fields.len() > 3 && !fields[3].is_empty() {
            fields[3].parse().map_err(|e| IoError::Parse {
                line: line_no,
                message: format!("bad timestep `{}`: {e}", fields[3]),
            })?
        } else {
            0
        };
        if fields.len() > 4 && !fields[4].is_empty() {
            let domain: u16 = fields[4].parse().map_err(|e| IoError::Parse {
                line: line_no,
                message: format!("bad domain `{}`: {e}", fields[4]),
            })?;
            let domain = DomainId(domain);
            match declared.get(&ItemId(item)) {
                Some(&(previous, previous_line)) => {
                    if previous != domain {
                        return Err(IoError::Parse {
                            line: line_no,
                            message: format!(
                                "conflicting domain `{}` for item {item}: declared as `{}` on \
                                 line {previous_line}",
                                domain.0, previous.0
                            ),
                        });
                    }
                }
                None => {
                    declared.insert(ItemId(item), (domain, line_no));
                    domains.push((ItemId(item), domain));
                }
            }
        }
        builder
            .push(Rating::at(
                UserId(user),
                ItemId(item),
                value,
                Timestep(timestep),
            ))
            .map_err(IoError::Build)?;
    }
    for (item, domain) in domains {
        builder.set_item_domain(item, domain);
    }
    builder.build().map_err(IoError::Build)
}

/// Reads ratings from a CSV file on disk.
pub fn read_ratings_file(path: impl AsRef<Path>) -> Result<RatingMatrix, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| IoError::io(path, "open ratings csv", e))?;
    read_ratings_from(file, path)
}

/// Writes a rating matrix as CSV (`user,item,rating,timestep,domain`).
pub fn write_ratings_csv<W: Write>(matrix: &RatingMatrix, writer: W) -> Result<(), IoError> {
    write_ratings_to(matrix, writer, Path::new(MEMORY_PATH))
}

/// The shared writer loop, with `path` naming the destination in I/O failures.
fn write_ratings_to<W: Write>(
    matrix: &RatingMatrix,
    mut writer: W,
    path: &Path,
) -> Result<(), IoError> {
    writeln!(writer, "# user,item,rating,timestep,domain")
        .map_err(|e| IoError::io(path, "write header", e))?;
    for r in matrix.iter() {
        writeln!(
            writer,
            "{},{},{},{},{}",
            r.user.0,
            r.item.0,
            r.value,
            r.timestep.0,
            matrix.item_domain(r.item).0
        )
        .map_err(|e| IoError::io(path, format!("write rating row for user {}", r.user.0), e))?;
    }
    Ok(())
}

/// Writes a rating matrix to a CSV file on disk.
pub fn write_ratings_file(matrix: &RatingMatrix, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    let file =
        std::fs::File::create(path).map_err(|e| IoError::io(path, "create ratings csv", e))?;
    write_ratings_to(matrix, file, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{CrossDomainConfig, CrossDomainDataset};

    #[test]
    fn parse_simple_csv() {
        let csv = "# comment\n0,0,5,1,0\n0,1,3,2,1\n1,1,4,0,1\n\n";
        let m = read_ratings_csv(csv.as_bytes()).unwrap();
        assert_eq!(m.n_ratings(), 3);
        assert_eq!(m.rating(UserId(0), ItemId(0)), Some(5.0));
        assert_eq!(m.item_domain(ItemId(1)), DomainId(1));
        assert_eq!(m.rating_timestep(UserId(0), ItemId(1)), Some(Timestep(2)));
    }

    #[test]
    fn parse_without_optional_fields() {
        let csv = "0,0,5\n1,0,2\n";
        let m = read_ratings_csv(csv.as_bytes()).unwrap();
        assert_eq!(m.n_ratings(), 2);
        assert_eq!(m.rating_timestep(UserId(0), ItemId(0)), Some(Timestep(0)));
        assert_eq!(m.item_domain(ItemId(0)), DomainId::SOURCE);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_ratings_csv("0,0,5\nnot,a,rating\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bad user id"));
            }
            other => panic!("unexpected error {other}"),
        }
        let err = read_ratings_csv("0,0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn non_finite_ratings_are_rejected_with_line_numbers() {
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let csv = format!("0,0,5,0,0\n1,1,{bad},0,0\n");
            let err = read_ratings_csv(csv.as_bytes()).unwrap_err();
            match err {
                IoError::Parse { line, message } => {
                    assert_eq!(line, 2, "`{bad}` must be attributed to its line");
                    assert!(
                        message.contains("non-finite") && message.contains(bad),
                        "unhelpful message for `{bad}`: {message}"
                    );
                }
                other => panic!("expected a parse error for `{bad}`, got {other}"),
            }
        }
    }

    #[test]
    fn conflicting_domain_declarations_are_rejected_with_the_conflict_line() {
        // item 1 is declared TARGET on line 2, then SOURCE on line 4
        let csv = "0,0,5,0,0\n0,1,3,0,1\n1,0,4,0,0\n1,1,2,0,0\n";
        let err = read_ratings_csv(csv.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 4, "the conflicting (not the first) line is at fault");
                assert!(
                    message.contains("conflicting domain") && message.contains("line 2"),
                    "message must name both declarations: {message}"
                );
            }
            other => panic!("expected a parse error, got {other}"),
        }
        // re-declaring the *same* domain is fine (the writer emits one per row)
        let ok = read_ratings_csv("0,1,3,0,1\n1,1,2,0,1\n".as_bytes()).unwrap();
        assert_eq!(ok.item_domain(ItemId(1)), DomainId(1));
    }

    #[test]
    fn round_trip_preserves_ratings_and_domains() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let mut buffer = Vec::new();
        write_ratings_csv(&ds.matrix, &mut buffer).unwrap();
        let restored = read_ratings_csv(buffer.as_slice()).unwrap();
        assert_eq!(restored.n_ratings(), ds.matrix.n_ratings());
        for r in ds.matrix.iter() {
            assert_eq!(restored.rating(r.user, r.item), Some(r.value));
            assert_eq!(restored.item_domain(r.item), ds.matrix.item_domain(r.item));
            assert_eq!(restored.rating_timestep(r.user, r.item), Some(r.timestep));
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let dir = std::env::temp_dir().join("xmap_dataset_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ratings.csv");
        write_ratings_file(&ds.matrix, &path).unwrap();
        let restored = read_ratings_file(&path).unwrap();
        assert_eq!(restored.n_ratings(), ds.matrix.n_ratings());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_ratings_file("/nonexistent/path/to/ratings.csv").unwrap_err();
        assert!(matches!(err, IoError::Io { .. }));
        let msg = err.to_string();
        assert!(
            msg.contains("io error at /nonexistent/path/to/ratings.csv")
                && msg.contains("open ratings csv"),
            "message must name the path and the operation: {msg}"
        );
    }

    mod round_trip_props {
        use super::*;
        use proptest::prelude::*;
        use xmap_cf::Rating;

        proptest! {
            /// Arbitrary finite rating values, timesteps and domains survive the CSV
            /// round trip exactly: every f64 bit, every timestep and every rated
            /// item's domain — and the restored matrix equals the original in full
            /// (the writer's `{}` formatting is shortest-round-trip).
            #[test]
            fn csv_round_trip_is_exact(
                ratings in proptest::collection::vec(
                    (0u32..12, 0u32..16, -1.0e6f64..1.0e6, 0u32..1000),
                    1..80,
                ),
            ) {
                let mut b = RatingMatrixBuilder::new();
                let mut rated: Vec<u32> = Vec::new();
                for &(u, i, v, t) in &ratings {
                    b.push(Rating::at(UserId(u), ItemId(i), v, Timestep(t))).unwrap();
                    rated.push(i);
                }
                rated.sort_unstable();
                rated.dedup();
                // only rated items carry their domain through a CSV row, so only
                // those are declared on the original
                for &i in &rated {
                    b.set_item_domain(ItemId(i), DomainId((i % 3) as u16));
                }
                let original = b.build().unwrap();

                let mut buffer = Vec::new();
                write_ratings_csv(&original, &mut buffer).unwrap();
                let restored = read_ratings_csv(buffer.as_slice()).unwrap();

                prop_assert_eq!(&restored, &original);
                for r in original.iter() {
                    prop_assert_eq!(
                        restored.rating(r.user, r.item).map(f64::to_bits),
                        Some(r.value.to_bits()),
                        "value bits changed for {}/{}", r.user, r.item
                    );
                    prop_assert_eq!(restored.rating_timestep(r.user, r.item), Some(r.timestep));
                    prop_assert_eq!(restored.item_domain(r.item), original.item_domain(r.item));
                }
            }
        }
    }
}
