//! # xmap-dataset — workload generators, splits and IO
//!
//! The paper evaluates X-Map on two proprietary-scale real traces — Amazon movies+books
//! (2011–2013) and MovieLens ML-20M — neither of which ships with this repository. This
//! crate provides the synthetic substitutes documented in `DESIGN.md`:
//!
//! * [`synthetic`] — a latent-factor cross-domain trace generator. Users own a taste
//!   vector that is *shared across domains*; overlapping (straddler) users rate in both
//!   domains, so cross-domain taste correlation is observable exactly the way X-Map
//!   exploits it. Domain sizes, overlap, sparsity, rating noise and timestamps are all
//!   configurable.
//! * [`genres`] — a genre-tagged single-domain generator plus the ML-20M genre-partition
//!   procedure of Table 2 (sort genres by movie count, allocate alternately to two
//!   sub-domains, assign each movie to the sub-domain with the larger genre overlap).
//! * [`toy`] — the hand-built Figure 1(a) scenario (Interstellar / Inception / The
//!   Forever War) used in examples and tests.
//! * [`split`] — evaluation splits: cold-start and sparsity-controlled target-profile
//!   holdouts, overlap-fraction sweeps, and plain random splits.
//! * [`io`] — a minimal CSV reader/writer for rating traces so external data can be used
//!   when available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod genres;
pub mod io;
pub mod split;
pub mod synthetic;
pub mod toy;

pub use genres::{GenreDatasetConfig, GenrePartition, GenreTaggedDataset};
pub use split::{CrossDomainSplit, SplitConfig};
pub use synthetic::{CrossDomainConfig, CrossDomainDataset};
pub use toy::ToyScenario;
