//! The engine-parallel sweep runner: [`SweepSpec`] → fitted models → [`SweepSeries`].
//!
//! `XMapModel::sweep` can refit-and-evaluate every parameter that lives in the model
//! configuration (k, ε, ε′, α). The one axis it cannot execute is the overlap fraction
//! of Figure 9, which changes the *split* rather than the config — [`SweepRunner`] owns
//! the dataset and split configuration, so it executes every [`SweepParam`] uniformly:
//! each sweep point is one pipeline fit plus one `EvalStage` dataflow run, and the
//! resulting series is deterministic for any worker count (the fit and the evaluation
//! both carry the engine's bit-identity contract).

use crate::experiments::Direction;
use xmap_cf::DomainId;
use xmap_core::{XMapConfig, XMapModel};
use xmap_dataset::split::{CrossDomainSplit, SplitConfig};
use xmap_dataset::synthetic::CrossDomainDataset;
use xmap_eval::{ranking_cases_from_test, EvalBatch, SweepParam, SweepSeries, SweepSpec};

/// Executes parameter sweeps over one dataset/direction/configuration triple.
pub struct SweepRunner {
    dataset: CrossDomainDataset,
    direction: Direction,
    base: XMapConfig,
    split: SplitConfig,
    top_n: usize,
    relevance_threshold: f64,
}

impl SweepRunner {
    /// Creates a runner with the default split protocol (§6.1 cold-start, seed 99),
    /// top-5 ranking lists and a relevance threshold of 4.0.
    pub fn new(dataset: CrossDomainDataset, direction: Direction, base: XMapConfig) -> Self {
        SweepRunner {
            dataset,
            direction,
            base,
            split: SplitConfig::default(),
            top_n: 5,
            relevance_threshold: 4.0,
        }
    }

    /// Replaces the split configuration.
    pub fn with_split(mut self, split: SplitConfig) -> Self {
        self.split = split;
        self
    }

    /// Replaces the ranking-list length N.
    pub fn with_top_n(mut self, top_n: usize) -> Self {
        self.top_n = top_n;
        self
    }

    /// Replaces the relevance threshold used to derive ranking cases from hidden
    /// ratings.
    pub fn with_relevance_threshold(mut self, threshold: f64) -> Self {
        self.relevance_threshold = threshold;
        self
    }

    /// The base configuration sweeps start from.
    pub fn base_config(&self) -> &XMapConfig {
        &self.base
    }

    /// The (source, target) domains of the runner's direction.
    pub fn domains(&self) -> (DomainId, DomainId) {
        self.direction.domains()
    }

    /// Number of recommendable items in the target domain (the coverage catalogue).
    pub fn catalogue_size(&self) -> usize {
        let (_, target) = self.domains();
        let matrix = &self.dataset.matrix;
        matrix
            .items()
            .filter(|&i| matrix.item_domain(i) == target)
            .count()
    }

    /// Builds the runner's split (optionally overriding the overlap fraction).
    pub fn split(&self, overlap_fraction: Option<f64>) -> CrossDomainSplit {
        let (_, target) = self.domains();
        let config = match overlap_fraction {
            Some(fraction) => SplitConfig {
                overlap_fraction: fraction,
                ..self.split
            },
            None => self.split,
        };
        CrossDomainSplit::build(&self.dataset, target, config)
    }

    /// The evaluation batch of a split: its hidden triples plus the ranking cases
    /// derived from them.
    pub fn eval_batch(&self, split: &CrossDomainSplit) -> EvalBatch {
        let ranking = ranking_cases_from_test(&split.test, self.relevance_threshold);
        EvalBatch::predictions(split.test.clone()).with_ranking(
            ranking,
            self.top_n,
            self.catalogue_size(),
        )
    }

    /// Fits the base configuration on a split's training matrix.
    pub fn fit(&self, split: &CrossDomainSplit) -> XMapModel {
        let (source, target) = self.domains();
        XMapModel::fit(&split.train, source, target, self.base)
            .expect("harness datasets always contain both domains") // lint: panic — reviewed invariant
    }

    /// Executes a sweep: one fitted pipeline plus one `EvalStage` dataflow run per
    /// point. Config-level parameters delegate to `XMapModel::sweep`; overlap points
    /// rebuild the split (the axis of Figure 9) and evaluate the base configuration on
    /// each rebuilt split.
    pub fn run(&self, spec: &SweepSpec) -> SweepSeries {
        match spec.param {
            SweepParam::Overlap => {
                let mut series = SweepSeries::new(format!(
                    "{} / {}",
                    self.base.mode.label(),
                    spec.param.label()
                ));
                for &fraction in &spec.values {
                    let split = self.split(Some(fraction));
                    let model = self.fit(&split);
                    let report = model.evaluate_batch(self.eval_batch(&split));
                    series.push(fraction, report.metric(spec.metric));
                }
                series
            }
            _ => {
                let split = self.split(None);
                let batch = self.eval_batch(&split);
                self.fit(&split)
                    .sweep(spec, &batch)
                    // lint: panic — reviewed invariant
                    .expect("config-level sweep params are handled by the model")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::amazon_like_small;
    use crate::experiments::evaluate_xmap;
    use xmap_core::XMapMode;
    use xmap_eval::SweepMetric;

    fn runner() -> SweepRunner {
        let base = XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 8,
            ..Default::default()
        };
        SweepRunner::new(amazon_like_small(), Direction::MovieToBook, base)
    }

    #[test]
    fn k_sweep_matches_the_serial_evaluation_protocol_bit_for_bit() {
        let r = runner();
        let series = r.run(&SweepSpec::new(SweepParam::K, vec![4.0, 8.0]));
        assert_eq!(series.points.len(), 2);
        let (source, target) = r.domains();
        let split = r.split(None);
        for point in &series.points {
            let config = XMapConfig {
                k: point.x as usize,
                ..*r.base_config()
            };
            // evaluate_xmap is the historical serial loop (evaluate_predictions over
            // model.predict); the engine-parallel sweep must agree bit for bit.
            let expected = evaluate_xmap(&split, source, target, config);
            assert_eq!(
                point.y.to_bits(),
                expected.to_bits(),
                "k={} diverged from the serial protocol",
                point.x
            );
        }
    }

    #[test]
    fn overlap_sweep_rebuilds_the_split_per_point() {
        let r = runner();
        let series = r.run(&SweepSpec::new(SweepParam::Overlap, vec![0.5, 1.0]));
        assert_eq!(series.label, "NX-MAP-IB / overlap");
        assert_eq!(series.points.len(), 2);
        for point in &series.points {
            assert!(
                point.y.is_finite(),
                "overlap={} produced non-finite MAE",
                point.x
            );
        }
    }

    #[test]
    fn sweeps_are_identical_for_1_2_and_8_workers() {
        let spec = SweepSpec::new(SweepParam::K, vec![4.0, 8.0]).with_metric(SweepMetric::Rmse);
        let mut reference: Option<SweepSeries> = None;
        for workers in [1usize, 2, 8] {
            let base = XMapConfig {
                mode: XMapMode::NxMapItemBased,
                k: 8,
                workers,
                ..Default::default()
            };
            let series =
                SweepRunner::new(amazon_like_small(), Direction::MovieToBook, base).run(&spec);
            match &reference {
                None => reference = Some(series),
                Some(expected) => {
                    assert_eq!(&series, expected, "{workers} workers changed the sweep")
                }
            }
        }
    }

    #[test]
    fn ranking_metrics_flow_through_the_sweep() {
        let r = runner();
        let series =
            r.run(&SweepSpec::new(SweepParam::K, vec![8.0]).with_metric(SweepMetric::PrecisionAtN));
        assert_eq!(series.points.len(), 1);
        let y = series.points[0].y;
        assert!((0.0..=1.0).contains(&y), "precision@N out of range: {y}");
        let batch = r.eval_batch(&r.split(None));
        assert!(!batch.ranking.is_empty());
        assert!(r.catalogue_size() > 0);
    }
}
