//! The `experiments` harness: engine-parallel sweeps plus the CI accuracy gate.
//!
//! ```text
//! cargo run --release -p xmap-bench --bin experiments -- eval-smoke
//! cargo run --release -p xmap-bench --bin experiments -- eval-smoke --out report.json
//! cargo run --release -p xmap-bench --bin experiments -- eval-smoke --check crates/bench/baselines/eval_smoke.json
//! cargo run --release -p xmap-bench --bin experiments -- sweep k [quick|full]
//! ```
//!
//! `eval-smoke` runs the full determinism/accuracy gate on the small fixed-seed trace:
//! it fits the model at 1, 2 and 8 workers, asserts the engine-parallel `EvalStage`
//! output is bit-identical to the serial `evaluate_predictions` reference at every
//! worker count (outputs *and* task-cost ledgers — including the fit stages'
//! `baseliner` / `extender` / `generator` / `recommender` bags and the incremental
//! fit's `delta` bag, captured by applying a pinned one-rating delta), runs the
//! sharded-routing gate (the same model routed across simulated nodes with hot-shard
//! replication must serve and ingest the exact single-node bits, and its
//! `route` / `shard_serve` / `shard_ingest` ledgers are pinned too), executes the
//! k / ε′ / overlap sweeps (ε′ rather than ε — see the note in `smoke_sweeps`), and
//! emits a machine-readable JSON report with the eval metrics *and* the fit ledgers'
//! task counts / total costs. With `--check <baseline>` the report is
//! diffed against the committed baseline: any MAE drift beyond 1e-9 fails the run —
//! and so does any fit task-cost drift — which is what the `eval-smoke` CI job
//! enforces on every push.
//!
//! `sweep <k|epsilon|epsilon_prime|alpha|overlap>` runs one sweep on the Amazon-like
//! trace and prints both the table and the JSON series.

use std::process::ExitCode;
use xmap_bench::experiments::Direction;
use xmap_bench::{amazon_like, amazon_like_small, Scale, SweepRunner};
use xmap_core::{PrivacyConfig, ShardedModel, XMapConfig, XMapMode, XMapModel};
use xmap_eval::{
    evaluate_batch_serial, evaluate_predictions, render_series_table, EvalReport, Json, SweepParam,
    SweepSeries, SweepSpec,
};

/// Tolerance of the accuracy gate: committed baseline values may drift by at most this.
const GATE_TOLERANCE: f64 = 1e-9;

/// Worker counts the determinism gate exercises.
const GATE_WORKERS: [usize; 3] = [1, 2, 8];

/// Node count of the sharded-routing gate.
const GATE_NODES: usize = 4;

/// Hot-shard replication factor of the sharded-routing gate.
const GATE_REPLICATION: u32 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval-smoke") => eval_smoke(&args[1..]),
        Some("sweep") => sweep_command(&args[1..]),
        _ => {
            eprintln!(
                "usage: experiments eval-smoke [--out PATH] [--check BASELINE]\n\
                        experiments sweep <k|epsilon|epsilon_prime|alpha|overlap> [quick|full]"
            );
            ExitCode::from(2)
        }
    }
}

/// The value following `flag`, if the flag is present. A flag with a missing value
/// (end of args, or another `--flag` in value position) aborts with a usage error
/// instead of silently consuming the next flag — a typo must not disable the gate.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let ix = args.iter().position(|a| a == flag)?;
    match args.get(ix + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => {
            eprintln!("error: `{flag}` requires a value");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------------
// eval-smoke: the determinism + accuracy gate
// ---------------------------------------------------------------------------

fn smoke_runner(mode: XMapMode) -> SweepRunner {
    let base = XMapConfig {
        mode,
        k: 8,
        privacy: match mode {
            XMapMode::XMapUserBased => PrivacyConfig::user_based_default(),
            _ => PrivacyConfig::default(),
        },
        ..Default::default()
    };
    SweepRunner::new(amazon_like_small(), Direction::MovieToBook, base)
}

/// The fit stages' per-partition task bags, keyed by ledger name — part of the gated
/// report so the baseline JSON also pins the fit task costs.
type FitLedgers = Vec<(&'static str, Vec<f64>)>;

/// Fits the smoke configuration at every gate worker count and asserts the
/// engine-parallel evaluation is bit-identical to the serial reference throughout —
/// and that the fit's own task-cost ledgers (`baseliner` / `extender` / `generator` /
/// `recommender`) are identical at every worker count.
/// Returns the (shared) report, the fit ledgers, and the model epoch the gated ledgers
/// describe (fit = epoch 1, plus one pinned delta = epoch 2) — stamped into the JSON
/// report so bench output is attributable to a model version.
fn run_determinism_gate(runner: &SweepRunner) -> (EvalReport, FitLedgers, u64) {
    let split = runner.split(None);
    let batch = runner.eval_batch(&split);
    assert!(
        !batch.test.is_empty() && !batch.ranking.is_empty(),
        "the smoke split must exercise both metric families"
    );
    let (source, target) = runner.domains();
    let mut reference: Option<(EvalReport, Vec<f64>, FitLedgers)> = None;
    for workers in GATE_WORKERS {
        let config = XMapConfig {
            workers,
            ..*runner.base_config()
        };
        let model = XMapModel::fit(&split.train, source, target, config)
            .expect("smoke dataset contains both domains");
        assert_eq!(
            model.epoch(),
            1,
            "{workers} workers: a fresh fit is epoch 1"
        );
        let stats = model.stats();
        let mut fit_ledgers: FitLedgers = vec![
            ("baseliner", stats.baseliner_task_costs.clone()),
            ("extender", stats.extension_task_costs.clone()),
            ("generator", stats.generator_task_costs.clone()),
            ("recommender", stats.recommender_task_costs.clone()),
        ];
        for (name, bag) in &fit_ledgers {
            assert!(
                !bag.is_empty(),
                "{workers} workers: the {name} stage recorded no task costs"
            );
        }
        let report = model.evaluate_batch(batch.clone());
        let serial = evaluate_batch_serial(&model, &batch);
        assert!(
            report.bits_eq(&serial),
            "{workers} workers: EvalStage diverged from the serial reference\n  stage:  {report:?}\n  serial: {serial:?}"
        );
        let loop_outcome = evaluate_predictions(&batch.test, |u, i| model.predict(u, i));
        assert_eq!(
            report.mae.to_bits(),
            loop_outcome.mae.to_bits(),
            "{workers} workers: MAE diverged from evaluate_predictions"
        );
        let costs = model
            .eval_task_costs()
            .expect("evaluation records task costs");
        // After everything is evaluated, apply the pinned smoke delta (the first test
        // triple fed back as a fresh rating) and capture the `delta` ledger: the
        // incremental fit's task bag is gated against the baseline — and against the
        // other worker counts — exactly like the fit stages'.
        let mut delta = xmap_core::RatingDelta::new();
        let probe = &batch.test[0];
        delta.push(xmap_cf::Rating::at(
            probe.user,
            probe.item,
            probe.value,
            xmap_cf::Timestep(10_000),
        ));
        let delta_report = model.apply_delta(&delta).expect("the smoke delta applies");
        assert!(
            delta_report.n_rescored_pairs > 0,
            "{workers} workers: the smoke delta must re-score at least one pair"
        );
        assert_eq!(
            (delta_report.epoch, model.epoch()),
            (2, 2),
            "{workers} workers: the smoke delta must publish epoch 2"
        );
        let delta_bag = model
            .delta_task_costs()
            .expect("apply_delta records its task bag");
        assert!(
            !delta_bag.is_empty(),
            "{workers} workers: the delta stage recorded no task costs"
        );
        fit_ledgers.push(("delta", delta_bag));
        match &reference {
            None => reference = Some((report, costs, fit_ledgers)),
            Some((expected, expected_costs, expected_ledgers)) => {
                assert!(
                    report.bits_eq(expected),
                    "{workers} workers changed the evaluation report"
                );
                assert_eq!(
                    &costs, expected_costs,
                    "{workers} workers changed the eval task costs"
                );
                assert_eq!(
                    &fit_ledgers, expected_ledgers,
                    "{workers} workers changed the fit task costs"
                );
            }
        }
    }
    let (report, _, ledgers) = reference.expect("at least one worker count ran");
    (report, ledgers, 2)
}

/// Routes the smoke model across [`GATE_NODES`] simulated nodes with hot-shard
/// replication (factor [`GATE_REPLICATION`]) and asserts every routed answer —
/// predictions, top-N lists, and a routed ingest of the pinned smoke delta —
/// carries the exact single-node bits. Returns the router's three task-cost
/// ledgers (`route` / `shard_serve` / `shard_ingest`) in the same shape as the
/// fit ledgers, so the baseline JSON also pins the routed work profile: a
/// drifting task count means the router's read placement or sub-delta
/// splitting changed — regenerate the baseline deliberately.
fn run_sharded_gate(runner: &SweepRunner) -> FitLedgers {
    let split = runner.split(None);
    let batch = runner.eval_batch(&split);
    let (source, target) = runner.domains();
    let fit = || {
        let config = XMapConfig {
            workers: 1,
            ..*runner.base_config()
        };
        XMapModel::fit(&split.train, source, target, config)
            .expect("smoke dataset contains both domains")
    };
    let reference = fit();
    let mut sharded = ShardedModel::with_hot_replication(fit(), GATE_NODES, GATE_REPLICATION)
        .expect("sharding the smoke model succeeds");

    let n = 5;
    let mut users: Vec<_> = batch.test.iter().map(|t| t.user).collect();
    users.dedup();
    users.truncate(8);
    for probe in batch.test.iter().take(16) {
        assert_eq!(
            sharded
                .predict(probe.user, probe.item)
                .expect("every shard has a live replica")
                .to_bits(),
            reference.predict(probe.user, probe.item).to_bits(),
            "routed prediction diverged from single-node for {:?}/{:?}",
            probe.user,
            probe.item
        );
    }
    for &user in &users {
        let routed: Vec<(u32, u64)> = sharded
            .recommend(user, n)
            .expect("every shard has a live replica")
            .into_iter()
            .map(|(i, s)| (i.0, s.to_bits()))
            .collect();
        let single: Vec<(u32, u64)> = reference
            .recommend(user, n)
            .into_iter()
            .map(|(i, s)| (i.0, s.to_bits()))
            .collect();
        assert_eq!(
            routed, single,
            "routed top-{n} diverged from single-node for {user:?}"
        );
    }

    // Routed ingest of the pinned smoke delta: the router must split, journal and
    // republish to the exact epoch and bits the single-node `apply_delta` reaches.
    let mut delta = xmap_core::RatingDelta::new();
    let probe = &batch.test[0];
    delta.push(xmap_cf::Rating::at(
        probe.user,
        probe.item,
        probe.value,
        xmap_cf::Timestep(10_000),
    ));
    let routed_report = sharded
        .ingest(&delta)
        .expect("the smoke delta routes cleanly");
    let single_report = reference
        .apply_delta(&delta)
        .expect("the smoke delta applies");
    assert_eq!(
        (routed_report.epoch, single_report.epoch),
        (2, 2),
        "the routed smoke delta must publish epoch 2 on both sides"
    );
    for probe in batch.test.iter().take(16) {
        assert_eq!(
            sharded
                .predict(probe.user, probe.item)
                .expect("every shard has a live replica")
                .to_bits(),
            reference.predict(probe.user, probe.item).to_bits(),
            "routed post-ingest prediction diverged from single-node for {:?}/{:?}",
            probe.user,
            probe.item
        );
    }

    let ledgers: FitLedgers = vec![
        (
            "route",
            sharded.route_ledger().iter().map(|t| t.cost).collect(),
        ),
        (
            "shard_serve",
            sharded
                .shard_serve_ledger()
                .iter()
                .map(|t| t.cost)
                .collect(),
        ),
        (
            "shard_ingest",
            sharded
                .shard_ingest_ledger()
                .iter()
                .map(|t| t.cost)
                .collect(),
        ),
    ];
    for (name, bag) in &ledgers {
        assert!(
            !bag.is_empty(),
            "the {name} ledger recorded no routed tasks"
        );
    }
    ledgers
}

fn smoke_sweeps() -> Vec<(SweepSpec, SweepSeries)> {
    let specs = vec![
        (
            XMapMode::NxMapItemBased,
            SweepSpec::new(SweepParam::K, vec![2.0, 4.0, 8.0]),
        ),
        // ε′ rather than ε: on the small smoke trace the PRS draw is insensitive to ε
        // in the paper's operating range (the fixed-seed exponential mechanism picks
        // the same replacements), while the PNSA/PNCF noise scales visibly with ε′ —
        // a moving series makes the drift gate meaningful for the private path.
        (
            XMapMode::XMapItemBased,
            SweepSpec::new(SweepParam::EpsilonPrime, vec![0.05, 0.3, 0.8]),
        ),
        (
            XMapMode::NxMapItemBased,
            SweepSpec::new(SweepParam::Overlap, vec![0.5, 1.0]),
        ),
    ];
    specs
        .into_iter()
        .map(|(mode, spec)| {
            let series = smoke_runner(mode).run(&spec);
            (spec, series)
        })
        .collect()
}

fn report_to_json(report: &EvalReport) -> Json {
    Json::obj([
        ("mae", Json::Num(report.mae)),
        ("rmse", Json::Num(report.rmse)),
        ("n_predictions", Json::Num(report.n_predictions as f64)),
        ("precision_at_n", Json::Num(report.precision_at_n)),
        ("recall_at_n", Json::Num(report.recall_at_n)),
        ("coverage", Json::Num(report.coverage)),
        ("n_ranking_users", Json::Num(report.n_ranking_users as f64)),
    ])
}

/// One JSON node per fit ledger: task count and total cost. The totals are sums of
/// integer-valued, data-derived work estimates accumulated in a fixed order, so they
/// are exactly reproducible and safe to gate at [`GATE_TOLERANCE`].
fn fit_ledgers_to_json(ledgers: &FitLedgers) -> Json {
    Json::obj(ledgers.iter().map(|(name, bag)| {
        (
            *name,
            Json::obj([
                ("n_tasks", Json::Num(bag.len() as f64)),
                ("total_cost", Json::Num(bag.iter().sum())),
            ]),
        )
    }))
}

fn series_to_json(spec: &SweepSpec, series: &SweepSeries) -> Json {
    Json::obj([
        ("param", Json::str(spec.param.label())),
        ("metric", Json::str(spec.metric.label())),
        ("label", Json::str(series.label.clone())),
        (
            "points",
            Json::Arr(
                series
                    .points
                    .iter()
                    .map(|p| Json::obj([("x", Json::Num(p.x)), ("y", Json::Num(p.y))]))
                    .collect(),
            ),
        ),
    ])
}

fn eval_smoke(args: &[String]) -> ExitCode {
    println!("# eval-smoke: engine-parallel evaluation gate");
    let runner = smoke_runner(XMapMode::NxMapItemBased);
    let (report, fit_ledgers, model_epoch) = run_determinism_gate(&runner);
    println!(
        "determinism: EvalStage bit-identical to the serial reference at {GATE_WORKERS:?} workers \
         (ledgers describe model epoch {model_epoch})"
    );
    for (name, bag) in &fit_ledgers {
        println!(
            "fit: {name} ledger {} tasks, total cost {:.0}",
            bag.len(),
            bag.iter().sum::<f64>()
        );
    }
    println!(
        "eval: mae {:.6}  rmse {:.6}  precision@N {:.4}  recall@N {:.4}  coverage {:.4}  ({} triples, {} ranking users)",
        report.mae,
        report.rmse,
        report.precision_at_n,
        report.recall_at_n,
        report.coverage,
        report.n_predictions,
        report.n_ranking_users
    );

    let shard_ledgers = run_sharded_gate(&runner);
    println!(
        "sharded: routed serving + ingest bit-identical to single-node at {GATE_NODES} nodes \
         (hot-shard replication factor {GATE_REPLICATION})"
    );
    for (name, bag) in &shard_ledgers {
        println!(
            "sharded: {name} ledger {} tasks, total cost {:.0}",
            bag.len(),
            bag.iter().sum::<f64>()
        );
    }

    let sweeps = smoke_sweeps();
    for (spec, series) in &sweeps {
        println!(
            "{}",
            render_series_table(spec.param.label(), std::slice::from_ref(series), 6)
        );
    }

    let doc = Json::obj([
        ("schema", Json::Num(1.0)),
        ("harness", Json::str("eval-smoke")),
        ("dataset", Json::str("amazon_like_small")),
        ("split_seed", Json::Num(99.0)),
        (
            "workers_checked",
            Json::Arr(GATE_WORKERS.iter().map(|&w| Json::Num(w as f64)).collect()),
        ),
        ("bit_identical", Json::Bool(true)),
        ("model_epoch", Json::Num(model_epoch as f64)),
        ("eval", report_to_json(&report)),
        ("fit", fit_ledgers_to_json(&fit_ledgers)),
        (
            "shard",
            Json::obj([
                ("n_nodes", Json::Num(GATE_NODES as f64)),
                ("replication", Json::Num(GATE_REPLICATION as f64)),
                ("ledgers", fit_ledgers_to_json(&shard_ledgers)),
            ]),
        ),
        (
            "sweeps",
            Json::Arr(
                sweeps
                    .iter()
                    .map(|(spec, series)| series_to_json(spec, series))
                    .collect(),
            ),
        ),
    ]);

    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, doc.render_pretty()).expect("failed to write the JSON report");
        println!("report written to {path}");
    } else {
        println!("{}", doc.render_pretty());
    }

    if let Some(path) = flag_value(args, "--check") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = Json::parse(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        let drift = diff_against_baseline(&doc, &baseline);
        if drift.is_empty() {
            println!("gate: report matches {path} within {GATE_TOLERANCE:e}");
        } else {
            eprintln!("gate FAILED against {path}:");
            for line in &drift {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Compares the freshly generated report against the committed baseline. Every numeric
/// field of `eval` and every sweep point must agree within [`GATE_TOLERANCE`]; missing
/// or extra sweeps are also drift (the baseline must be regenerated deliberately).
fn diff_against_baseline(current: &Json, baseline: &Json) -> Vec<String> {
    let mut drift = Vec::new();
    fn check(drift: &mut Vec<String>, name: String, cur: Option<f64>, base: Option<f64>) {
        match (cur, base) {
            // Fail closed: a NaN-regressed value (whose every `>` comparison is false)
            // must register as drift, so non-finite deltas are rejected explicitly.
            (Some(c), Some(b)) => {
                let delta = (c - b).abs();
                if !delta.is_finite() || delta > GATE_TOLERANCE {
                    drift.push(format!("{name}: {c} vs baseline {b} (|Δ| = {delta:e})"));
                }
            }
            (c, b) => drift.push(format!(
                "{name}: missing value (current {c:?}, baseline {b:?})"
            )),
        }
    }

    // The epoch the gated ledgers describe: fit (1) plus the pinned smoke delta (2).
    // A drift here means the gate's fit/delta sequence itself changed.
    check(
        &mut drift,
        "model_epoch".to_string(),
        current.get("model_epoch").and_then(Json::as_f64),
        baseline.get("model_epoch").and_then(Json::as_f64),
    );

    for field in [
        "mae",
        "rmse",
        "n_predictions",
        "precision_at_n",
        "recall_at_n",
        "coverage",
        "n_ranking_users",
    ] {
        check(
            &mut drift,
            format!("eval.{field}"),
            current
                .get("eval")
                .and_then(|e| e.get(field))
                .and_then(Json::as_f64),
            baseline
                .get("eval")
                .and_then(|e| e.get(field))
                .and_then(Json::as_f64),
        );
    }

    // The fit task-cost ledgers (plus the incremental fit's `delta` bag): a drifting
    // task count or total cost means the fit's partitioning or cost model changed —
    // regenerate the baseline deliberately.
    for stage in ["baseliner", "extender", "generator", "recommender", "delta"] {
        for field in ["n_tasks", "total_cost"] {
            check(
                &mut drift,
                format!("fit.{stage}.{field}"),
                current
                    .get("fit")
                    .and_then(|f| f.get(stage))
                    .and_then(|s| s.get(field))
                    .and_then(Json::as_f64),
                baseline
                    .get("fit")
                    .and_then(|f| f.get(stage))
                    .and_then(|s| s.get(field))
                    .and_then(Json::as_f64),
            );
        }
    }

    // The sharded router's work profile: the gate's fixed node count and replication
    // factor, plus each routed ledger's task count and total cost. A drift means the
    // router's read placement, serving fan-out or sub-delta splitting changed.
    for field in ["n_nodes", "replication"] {
        check(
            &mut drift,
            format!("shard.{field}"),
            current
                .get("shard")
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64),
            baseline
                .get("shard")
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64),
        );
    }
    for ledger in ["route", "shard_serve", "shard_ingest"] {
        for field in ["n_tasks", "total_cost"] {
            check(
                &mut drift,
                format!("shard.ledgers.{ledger}.{field}"),
                current
                    .get("shard")
                    .and_then(|s| s.get("ledgers"))
                    .and_then(|l| l.get(ledger))
                    .and_then(|s| s.get(field))
                    .and_then(Json::as_f64),
                baseline
                    .get("shard")
                    .and_then(|s| s.get("ledgers"))
                    .and_then(|l| l.get(ledger))
                    .and_then(|s| s.get(field))
                    .and_then(Json::as_f64),
            );
        }
    }

    let empty: [Json; 0] = [];
    let current_sweeps = current
        .get("sweeps")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let baseline_sweeps = baseline
        .get("sweeps")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    if current_sweeps.len() != baseline_sweeps.len() {
        drift.push(format!(
            "sweep count changed: {} vs baseline {}",
            current_sweeps.len(),
            baseline_sweeps.len()
        ));
    }
    for base_sweep in baseline_sweeps {
        let param = base_sweep
            .get("param")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let metric = base_sweep
            .get("metric")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let Some(cur_sweep) = current_sweeps.iter().find(|s| {
            s.get("param").and_then(Json::as_str) == Some(param)
                && s.get("metric").and_then(Json::as_str) == Some(metric)
        }) else {
            drift.push(format!(
                "sweep {param}/{metric}: missing from the current report"
            ));
            continue;
        };
        let base_points = base_sweep
            .get("points")
            .and_then(Json::as_array)
            .unwrap_or(&empty);
        let cur_points = cur_sweep
            .get("points")
            .and_then(Json::as_array)
            .unwrap_or(&empty);
        if base_points.len() != cur_points.len() {
            drift.push(format!(
                "sweep {param}/{metric}: {} points vs baseline {}",
                cur_points.len(),
                base_points.len()
            ));
            continue;
        }
        for (ix, (cur, base)) in cur_points.iter().zip(base_points).enumerate() {
            check(
                &mut drift,
                format!("sweep {param}/{metric} point {ix} x"),
                cur.get("x").and_then(Json::as_f64),
                base.get("x").and_then(Json::as_f64),
            );
            check(
                &mut drift,
                format!("sweep {param}/{metric} point {ix} y"),
                cur.get("y").and_then(Json::as_f64),
                base.get("y").and_then(Json::as_f64),
            );
        }
    }
    drift
}

// ---------------------------------------------------------------------------
// sweep: one-off sweeps on the Amazon-like trace
// ---------------------------------------------------------------------------

fn sweep_command(args: &[String]) -> ExitCode {
    let Some(param) = args.first().and_then(|p| SweepParam::parse(p)) else {
        eprintln!("usage: experiments sweep <k|epsilon|epsilon_prime|alpha|overlap> [quick|full]");
        return ExitCode::from(2);
    };
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);
    let (mode, values): (XMapMode, Vec<f64>) = match param {
        SweepParam::K => (
            XMapMode::NxMapItemBased,
            match scale {
                Scale::Quick => vec![10.0, 25.0, 50.0],
                Scale::Full => vec![10.0, 25.0, 50.0, 75.0, 100.0],
            },
        ),
        SweepParam::Epsilon | SweepParam::EpsilonPrime => (
            XMapMode::XMapItemBased,
            match scale {
                Scale::Quick => vec![0.2, 0.5, 0.8],
                Scale::Full => vec![0.1, 0.3, 0.5, 0.7, 0.9],
            },
        ),
        SweepParam::TemporalAlpha => (XMapMode::NxMapItemBased, vec![0.0, 0.05, 0.1, 0.15, 0.2]),
        SweepParam::Overlap => (XMapMode::NxMapItemBased, vec![0.2, 0.4, 0.6, 0.8, 1.0]),
    };
    let base = XMapConfig {
        mode,
        k: 40,
        privacy: match mode {
            XMapMode::XMapUserBased => PrivacyConfig::user_based_default(),
            _ => PrivacyConfig::default(),
        },
        ..Default::default()
    };
    let spec = SweepSpec::new(param, values);
    println!("# sweep {} on amazon_like ({scale:?})", param.label());
    let series = SweepRunner::new(amazon_like(scale), Direction::MovieToBook, base).run(&spec);
    print!(
        "{}",
        render_series_table(param.label(), std::slice::from_ref(&series), 4)
    );
    println!("{}", series_to_json(&spec, &series).render_pretty());
    ExitCode::SUCCESS
}
