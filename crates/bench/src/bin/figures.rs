//! The `figures` harness: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p xmap-bench --bin figures -- all            # every experiment (quick scale)
//! cargo run --release -p xmap-bench --bin figures -- fig8           # one experiment
//! cargo run --release -p xmap-bench --bin figures -- fig8 full      # larger workload
//! ```
//!
//! Experiment ids: `fig1b`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `table2`, `table3`, `all`.

use std::time::Instant;
use xmap_bench::experiments::{self, PrivacySurface};
use xmap_bench::Scale;
use xmap_eval::{render_series_table, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);

    let known = [
        "fig1b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "table3",
    ];
    let selected: Vec<&str> = if experiment == "all" {
        known.to_vec()
    } else if known.contains(&experiment) {
        vec![experiment]
    } else {
        eprintln!("unknown experiment `{experiment}`; expected one of {known:?} or `all`");
        std::process::exit(2);
    };

    println!("# X-Map reproduction harness (scale: {scale:?})");
    println!();
    for id in selected {
        let start = Instant::now();
        run(id, scale);
        println!("[{id} completed in {:.1?}]", start.elapsed());
        println!();
    }
}

fn run(id: &str, scale: Scale) {
    match id {
        "fig1b" => {
            println!("## Figure 1(b) — heterogeneous similarities, standard vs meta-path-based");
            let r = experiments::fig1b(scale);
            let rows = vec![
                vec![
                    "Standard (direct edges)".to_string(),
                    r.standard.to_string(),
                ],
                vec![
                    "Meta-path-based (X-Sim)".to_string(),
                    r.metapath_based.to_string(),
                ],
            ];
            print!(
                "{}",
                render_table(&["method", "# heterogeneous similarities"], &rows)
            );
        }
        "fig5" => {
            println!("## Figure 5 — temporal relevance: MAE vs α (item-based variants)");
            let series = experiments::fig5(scale);
            print!("{}", render_series_table("alpha", &series, 4));
            for s in &series {
                if let Some(best) = s.best() {
                    println!(
                        "optimal alpha for {}: {:.2} (MAE {:.4})",
                        s.label, best.x, best.y
                    );
                }
            }
        }
        "fig6" => {
            println!("## Figure 6 — privacy-quality trade-off, X-Map-ib: MAE over (ε, ε′)");
            print_privacy_surfaces(&experiments::fig6(scale));
        }
        "fig7" => {
            println!("## Figure 7 — privacy-quality trade-off, X-Map-ub: MAE over (ε, ε′)");
            print_privacy_surfaces(&experiments::fig7(scale));
        }
        "fig8" => {
            println!("## Figure 8 — MAE vs k against the competitors");
            for panel in experiments::fig8(scale) {
                println!("### {}", panel.direction);
                print!("{}", render_series_table("k", &panel.series, 4));
            }
        }
        "fig9" => {
            println!("## Figure 9 — MAE vs overlap (fraction of straddlers in training)");
            for panel in experiments::fig9(scale) {
                println!("### {}", panel.direction);
                print!("{}", render_series_table("overlap", &panel.series, 4));
            }
        }
        "fig10" => {
            println!("## Figure 10 — MAE vs auxiliary target-profile size (sparsity)");
            for panel in experiments::fig10(scale) {
                println!("### {}", panel.direction);
                print!("{}", render_series_table("aux profile", &panel.series, 4));
            }
        }
        "fig11" => {
            println!("## Figure 11 — scalability: simulated speedup vs number of machines");
            let series = experiments::fig11(scale);
            print!("{}", render_series_table("machines", &series, 3));
        }
        "table2" => {
            println!("## Table 2 — genre-based sub-domains of the MovieLens-like trace");
            let t = experiments::table2(scale);
            let rows: Vec<Vec<String>> = t
                .rows
                .iter()
                .map(|(g, c, d)| vec![g.clone(), c.to_string(), d.to_string()])
                .collect();
            print!(
                "{}",
                render_table(&["genre", "movie count", "sub-domain"], &rows)
            );
            println!(
                "sub-domain sizes: D1 = {} items, D2 = {} items",
                t.domain_sizes.0, t.domain_sizes.1
            );
        }
        "table3" => {
            println!("## Table 3 — homogeneous setting: MAE of NX-Map / X-Map / ALS");
            let rows: Vec<Vec<String>> = experiments::table3(scale)
                .into_iter()
                .map(|(name, mae)| vec![name, format!("{mae:.4}")])
                .collect();
            print!("{}", render_table(&["system", "MAE"], &rows));
        }
        other => unreachable!("unknown experiment {other}"),
    }
}

fn print_privacy_surfaces(surfaces: &[PrivacySurface]) {
    for surface in surfaces {
        println!("### {}", surface.direction);
        let rows: Vec<Vec<String>> = surface
            .rows
            .iter()
            .map(|(e, ep, mae)| vec![format!("{e:.1}"), format!("{ep:.1}"), format!("{mae:.4}")])
            .collect();
        print!("{}", render_table(&["epsilon", "epsilon'", "MAE"], &rows));
    }
}
