//! Shared dataset builders for the experiment harness.
//!
//! The paper evaluates on the Amazon movies+books trace and on MovieLens ML-20M; the
//! harness substitutes the synthetic generators of `xmap-dataset` (see DESIGN.md). Two
//! scales are provided: [`Scale::Quick`] keeps every experiment in the seconds range so
//! `cargo run -p xmap-bench --bin figures -- all` is practical on a laptop/CI box, and
//! [`Scale::Full`] enlarges the traces for more stable numbers.

use xmap_dataset::genres::{GenreDatasetConfig, GenreTaggedDataset};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

/// The size of the synthetic workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small traces; every experiment finishes in seconds.
    Quick,
    /// Larger traces; closer to the density of the paper's data, minutes per experiment.
    Full,
}

impl Scale {
    /// Parses a scale from a command-line argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// The Amazon-movies+books stand-in: a two-domain cross-domain trace with overlapping
/// (straddler) users.
pub fn amazon_like(scale: Scale) -> CrossDomainDataset {
    // The overlap is kept small relative to the within-domain population (≈8% of users
    // are straddlers, as in the real Amazon trace where 78K of ~1.1M users overlap):
    // this is the regime in which heterogeneous recommendation is both needed and
    // possible, and in which the paper's accuracy ordering emerges.
    let config = match scale {
        Scale::Quick => CrossDomainConfig {
            n_source_items: 100,
            n_target_items: 120,
            n_source_only_users: 120,
            n_target_only_users: 120,
            n_overlap_users: 20,
            ratings_per_user: 20,
            latent_dim: 3,
            noise: 0.25,
            seed: 7,
            popularity_skew: 0.0,
        },
        Scale::Full => CrossDomainConfig {
            n_source_items: 300,
            n_target_items: 400,
            n_source_only_users: 400,
            n_target_only_users: 400,
            n_overlap_users: 60,
            ratings_per_user: 30,
            latent_dim: 4,
            noise: 0.25,
            seed: 7,
            popularity_skew: 0.0,
        },
    };
    CrossDomainDataset::generate(config)
}

/// A very small cross-domain trace used by unit tests of the harness itself.
pub fn amazon_like_small() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

/// A *sparse-overlap* variant of the Amazon stand-in used by the Figure 1(b) counting
/// experiment: the real Amazon trace has a density around 10⁻⁵, so most items are not
/// co-rated across domains and the meta-path extension is what creates heterogeneous
/// similarities. The accuracy experiments use the denser [`amazon_like`] trace instead,
/// where every split still contains enough hidden ratings to measure MAE stably.
pub fn amazon_like_sparse(scale: Scale) -> CrossDomainDataset {
    let config = match scale {
        Scale::Quick => CrossDomainConfig {
            n_source_items: 150,
            n_target_items: 180,
            n_source_only_users: 80,
            n_target_only_users: 80,
            n_overlap_users: 12,
            ratings_per_user: 7,
            latent_dim: 4,
            noise: 0.35,
            seed: 17,
            popularity_skew: 0.0,
        },
        Scale::Full => CrossDomainConfig {
            n_source_items: 600,
            n_target_items: 800,
            n_source_only_users: 400,
            n_target_only_users: 400,
            n_overlap_users: 40,
            ratings_per_user: 10,
            latent_dim: 6,
            noise: 0.35,
            seed: 17,
            popularity_skew: 0.0,
        },
    };
    CrossDomainDataset::generate(config)
}

/// The MovieLens ML-20M stand-in: a genre-tagged single-domain trace.
pub fn movielens_like(scale: Scale) -> GenreTaggedDataset {
    let config = match scale {
        Scale::Quick => GenreDatasetConfig {
            n_items: 150,
            n_users: 100,
            ratings_per_user: 20,
            max_genres_per_item: 3,
            noise: 0.35,
            seed: 21,
        },
        Scale::Full => GenreDatasetConfig {
            n_items: 600,
            n_users: 400,
            ratings_per_user: 40,
            max_genres_per_item: 3,
            noise: 0.35,
            seed: 21,
        },
    };
    GenreTaggedDataset::generate(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn builders_produce_overlap_and_genres() {
        let amazon = amazon_like(Scale::Quick);
        assert!(!amazon.overlap_users.is_empty());
        assert!(amazon.matrix.n_ratings() > 1000);
        let ml = movielens_like(Scale::Quick);
        assert_eq!(ml.item_genres.len(), 150);
        let small = amazon_like_small();
        assert!(small.matrix.n_ratings() > 100);
    }
}
