//! # xmap-bench — the experiment harness
//!
//! Every table and figure of the paper's evaluation (§6) has a corresponding function in
//! [`experiments`]; the `figures` binary dispatches on experiment ids (`fig1b`, `fig5`,
//! …, `table3`, `fig11`, or `all`) and prints the regenerated rows/series, and the
//! Criterion benches time the underlying computations. The [`sweep`] module runs
//! declarative parameter sweeps on the dataflow engine, and the `experiments` binary
//! exposes them together with the `eval-smoke` determinism/accuracy gate that CI diffs
//! against a committed JSON baseline. The mapping from experiment id to paper artifact
//! is documented in `DESIGN.md` (per-experiment index) and the measured outcomes are
//! recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod experiments;
pub mod sweep;

pub use datasets::{amazon_like, amazon_like_small, amazon_like_sparse, movielens_like, Scale};
pub use experiments::*;
pub use sweep::SweepRunner;
