//! One function per table/figure of the paper's evaluation (§6).
//!
//! Every function builds the appropriate synthetic workload, runs the systems under test
//! and returns the regenerated rows/series. Absolute numbers differ from the paper (the
//! workloads are synthetic substitutes, see DESIGN.md), but the comparisons the paper
//! draws — which system wins, how error moves with k / overlap / sparsity / ε — are the
//! reproduced artifact, and `EXPERIMENTS.md` records both.

use crate::datasets::{amazon_like, movielens_like, Scale};
use xmap_cf::baselines::{
    ItemAverage, LinkedDomainItemKnn, RatingPredictor, RemoteUser, SingleDomainItemKnn,
};
use xmap_cf::{DomainId, Rating, RatingMatrix, UserKnnConfig};
use xmap_core::{PrivacyConfig, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::split::{random_holdout, CrossDomainSplit, SplitConfig};
use xmap_dataset::synthetic::CrossDomainDataset;
use xmap_engine::{ClusterCostModel, ClusterSim};
use xmap_eval::{evaluate_predictions, SweepSeries};

/// The two evaluation directions of the cross-domain experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Source: movies (DomainId::SOURCE) → Target: books (DomainId::TARGET).
    MovieToBook,
    /// Source: books → Target: movies.
    BookToMovie,
}

impl Direction {
    /// Both directions, in the order the paper's figure panels use.
    pub const ALL: [Direction; 2] = [Direction::BookToMovie, Direction::MovieToBook];

    /// The (source, target) domain ids of this direction.
    pub fn domains(&self) -> (DomainId, DomainId) {
        match self {
            Direction::MovieToBook => (DomainId::SOURCE, DomainId::TARGET),
            Direction::BookToMovie => (DomainId::TARGET, DomainId::SOURCE),
        }
    }

    /// Panel caption as used in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Direction::MovieToBook => "Source: Movie Target: Book",
            Direction::BookToMovie => "Source: Book Target: Movie",
        }
    }
}

/// Default split for the cold-start experiments.
fn default_split() -> SplitConfig {
    SplitConfig {
        test_fraction: 0.3,
        auxiliary_profile_size: 0,
        overlap_fraction: 1.0,
        seed: 99,
    }
}

/// Default X-Map configuration used by the harness (k = 50 in the paper; the quick
/// workloads are smaller so the harness default is k = 40 unless an experiment sweeps k).
fn harness_config(mode: XMapMode, k: usize) -> XMapConfig {
    XMapConfig {
        mode,
        k,
        privacy: match mode {
            XMapMode::XMapUserBased => PrivacyConfig::user_based_default(),
            _ => PrivacyConfig::default(),
        },
        // Spark-style sizing for the Figure 11 sweep: comfortably more dataflow
        // partitions (= simulated tasks) than the largest simulated cluster.
        partitions: 128,
        ..Default::default()
    }
}

/// Fits X-Map on the training matrix of `split` and evaluates MAE on its hidden ratings.
pub fn evaluate_xmap(
    split: &CrossDomainSplit,
    source: DomainId,
    target: DomainId,
    config: XMapConfig,
) -> f64 {
    let model = XMapModel::fit(&split.train, source, target, config)
        .expect("harness datasets always contain both domains"); // lint: panic — reviewed invariant
    evaluate_predictions(&split.test, |u, i| model.predict(u, i)).mae
}

/// Evaluates one of the competitor baselines on a split.
pub fn evaluate_baseline(
    split: &CrossDomainSplit,
    source: DomainId,
    system: &str,
    k: usize,
) -> f64 {
    let train = &split.train;
    let test: &[Rating] = &split.test;
    match system {
        "ITEMAVERAGE" => {
            let p = ItemAverage::new(train);
            evaluate_predictions(test, |u, i| p.predict(u, i)).mae
        }
        "REMOTEUSER" => {
            let p = RemoteUser::new(
                train,
                source,
                UserKnnConfig {
                    k,
                    min_similarity: 0.0,
                },
            )
            .expect("training matrix is non-empty"); // lint: panic — reviewed invariant
            evaluate_predictions(test, |u, i| p.predict(u, i)).mae
        }
        "ITEM-BASED-KNN" | "KNN-CD" => {
            let p = LinkedDomainItemKnn::fit(train, k).expect("training matrix is non-empty"); // lint: panic — reviewed invariant
            evaluate_predictions(test, |u, i| p.predict(u, i)).mae
        }
        "KNN-SD" => {
            let target = if source == DomainId::SOURCE {
                DomainId::TARGET
            } else {
                DomainId::SOURCE
            };
            let p =
                SingleDomainItemKnn::fit(train, target, k).expect("training matrix is non-empty"); // lint: panic — reviewed invariant
            let queries: Vec<_> = test.iter().map(|r| (r.user, r.item)).collect();
            let preds = p.predict_batch(&queries).expect("prediction batch"); // lint: panic — reviewed invariant
            let pairs: Vec<(f64, f64)> = preds
                .into_iter()
                .zip(test.iter().map(|r| r.value))
                .collect();
            xmap_eval::mae(&pairs)
        }
        other => panic!("unknown baseline `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Figure 1(b): heterogeneous similarities with and without meta-paths
// ---------------------------------------------------------------------------

/// Result of the Figure 1(b) counting experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig1bResult {
    /// Heterogeneous item pairs with a non-zero *direct* (standard) similarity.
    pub standard: usize,
    /// Heterogeneous item pairs with a non-zero similarity after the X-Sim extension.
    pub metapath_based: usize,
}

/// Figure 1(b): number of heterogeneous similarities, standard vs meta-path-based.
///
/// Uses the sparse-overlap trace ([`crate::datasets::amazon_like_sparse`]) because the
/// meta-path advantage of Figure 1(b) is a property of sparse real-world traces where
/// most cross-domain item pairs share no rater.
pub fn fig1b(scale: Scale) -> Fig1bResult {
    let ds = crate::datasets::amazon_like_sparse(scale);
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        harness_config(XMapMode::NxMapItemBased, 40),
    )
    .expect("generated dataset always contains both domains"); // lint: panic — reviewed invariant
    Fig1bResult {
        standard: model.stats().n_standard_hetero_pairs,
        metapath_based: model.stats().n_xsim_hetero_pairs,
    }
}

// ---------------------------------------------------------------------------
// Figure 5: temporal relevance (MAE vs α)
// ---------------------------------------------------------------------------

/// Figure 5: MAE of the item-based variants as the temporal decay α varies. Returns one
/// series per (direction, system) panel.
pub fn fig5(scale: Scale) -> Vec<SweepSeries> {
    let ds = amazon_like(scale);
    let alphas: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.05, 0.1, 0.15, 0.2],
        Scale::Full => (0..=10).map(|i| i as f64 * 0.02).collect(),
    };
    let mut out = Vec::new();
    for direction in Direction::ALL {
        let (source, target) = direction.domains();
        let split = CrossDomainSplit::build(&ds, target, default_split());
        for mode in [XMapMode::XMapItemBased, XMapMode::NxMapItemBased] {
            let mut series = SweepSeries::new(format!("{} ({})", mode.label(), direction.label()));
            for &alpha in &alphas {
                let config = XMapConfig {
                    temporal_alpha: alpha,
                    ..harness_config(mode, 40)
                };
                series.push(alpha, evaluate_xmap(&split, source, target, config));
            }
            out.push(series);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 6 and 7: privacy-quality trade-off (MAE over the (ε, ε′) grid)
// ---------------------------------------------------------------------------

/// One panel of the privacy-quality surface: the direction plus `(ε, ε′, MAE)` rows.
#[derive(Clone, Debug)]
pub struct PrivacySurface {
    /// Panel caption.
    pub direction: &'static str,
    /// `(ε, ε′, MAE)` grid rows.
    pub rows: Vec<(f64, f64, f64)>,
}

fn privacy_surface(scale: Scale, mode: XMapMode) -> Vec<PrivacySurface> {
    let ds = amazon_like(scale);
    let grid: Vec<f64> = match scale {
        Scale::Quick => vec![0.2, 0.5, 0.8],
        Scale::Full => vec![0.1, 0.3, 0.5, 0.7, 0.9],
    };
    let mut out = Vec::new();
    for direction in Direction::ALL {
        let (source, target) = direction.domains();
        let split = CrossDomainSplit::build(&ds, target, default_split());
        let mut rows = Vec::new();
        for &eps in &grid {
            for &eps_prime in &grid {
                let config = XMapConfig {
                    privacy: PrivacyConfig {
                        epsilon: eps,
                        epsilon_prime: eps_prime,
                        rho: 0.05,
                    },
                    ..harness_config(mode, 40)
                };
                rows.push((
                    eps,
                    eps_prime,
                    evaluate_xmap(&split, source, target, config),
                ));
            }
        }
        out.push(PrivacySurface {
            direction: direction.label(),
            rows,
        });
    }
    out
}

/// Figure 6: privacy-quality trade-off of X-Map-ib.
pub fn fig6(scale: Scale) -> Vec<PrivacySurface> {
    privacy_surface(scale, XMapMode::XMapItemBased)
}

/// Figure 7: privacy-quality trade-off of X-Map-ub.
pub fn fig7(scale: Scale) -> Vec<PrivacySurface> {
    privacy_surface(scale, XMapMode::XMapUserBased)
}

// ---------------------------------------------------------------------------
// Figure 8: MAE vs k against the competitors
// ---------------------------------------------------------------------------

/// One figure panel: the direction label plus the per-system series.
#[derive(Clone, Debug)]
pub struct FigurePanel {
    /// Panel caption.
    pub direction: &'static str,
    /// One series per system.
    pub series: Vec<SweepSeries>,
}

/// Figure 8: MAE of the X-Map variants and the competitors as k varies.
pub fn fig8(scale: Scale) -> Vec<FigurePanel> {
    let ds = amazon_like(scale);
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![10, 25, 50],
        Scale::Full => vec![10, 25, 50, 75, 100],
    };
    let modes = [
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
    ];
    let baselines = ["ITEMAVERAGE", "REMOTEUSER", "ITEM-BASED-KNN"];
    let mut panels = Vec::new();
    for direction in Direction::ALL {
        let (source, target) = direction.domains();
        let split = CrossDomainSplit::build(&ds, target, default_split());
        let mut series: Vec<SweepSeries> = Vec::new();
        for mode in modes {
            let mut s = SweepSeries::new(mode.label());
            for &k in &ks {
                s.push(
                    k as f64,
                    evaluate_xmap(&split, source, target, harness_config(mode, k)),
                );
            }
            series.push(s);
        }
        for name in baselines {
            let mut s = SweepSeries::new(name);
            for &k in &ks {
                s.push(k as f64, evaluate_baseline(&split, source, name, k));
            }
            series.push(s);
        }
        panels.push(FigurePanel {
            direction: direction.label(),
            series,
        });
    }
    panels
}

// ---------------------------------------------------------------------------
// Figure 9: MAE vs overlap (fraction of straddlers in the training set)
// ---------------------------------------------------------------------------

/// Figure 9: MAE as the fraction of overlapping users available for training grows.
pub fn fig9(scale: Scale) -> Vec<FigurePanel> {
    let ds = amazon_like(scale);
    let fractions = [0.2, 0.4, 0.6, 0.8];
    let modes = [
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
    ];
    let baselines = ["ITEMAVERAGE", "REMOTEUSER", "ITEM-BASED-KNN"];
    let k = 40;
    let mut panels = Vec::new();
    for direction in Direction::ALL {
        let (source, target) = direction.domains();
        let mut series: Vec<SweepSeries> =
            modes.iter().map(|m| SweepSeries::new(m.label())).collect();
        let mut baseline_series: Vec<SweepSeries> =
            baselines.iter().map(|b| SweepSeries::new(*b)).collect();
        for &fraction in &fractions {
            let split = CrossDomainSplit::build(
                &ds,
                target,
                SplitConfig {
                    overlap_fraction: fraction,
                    ..default_split()
                },
            );
            for (idx, &mode) in modes.iter().enumerate() {
                series[idx].push(
                    fraction,
                    evaluate_xmap(&split, source, target, harness_config(mode, k)),
                );
            }
            for (idx, name) in baselines.iter().enumerate() {
                baseline_series[idx].push(fraction, evaluate_baseline(&split, source, name, k));
            }
        }
        series.extend(baseline_series);
        panels.push(FigurePanel {
            direction: direction.label(),
            series,
        });
    }
    panels
}

// ---------------------------------------------------------------------------
// Figure 10: MAE vs auxiliary target profile size (sparsity)
// ---------------------------------------------------------------------------

/// Figure 10: MAE as the test users' auxiliary target-domain profile grows from 0
/// (cold-start) to 6 ratings, against the single-domain and linked-domain kNN baselines.
pub fn fig10(scale: Scale) -> Vec<FigurePanel> {
    let ds = amazon_like(scale);
    let aux_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4, 6],
        Scale::Full => (0..=6).collect(),
    };
    let modes = [
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
    ];
    let baselines = ["KNN-CD", "KNN-SD"];
    let k = 40;
    let mut panels = Vec::new();
    for direction in Direction::ALL {
        let (source, target) = direction.domains();
        let mut series: Vec<SweepSeries> =
            modes.iter().map(|m| SweepSeries::new(m.label())).collect();
        let mut baseline_series: Vec<SweepSeries> =
            baselines.iter().map(|b| SweepSeries::new(*b)).collect();
        for &aux in &aux_sizes {
            let split = CrossDomainSplit::build(
                &ds,
                target,
                SplitConfig {
                    auxiliary_profile_size: aux,
                    ..default_split()
                },
            );
            for (idx, &mode) in modes.iter().enumerate() {
                series[idx].push(
                    aux as f64,
                    evaluate_xmap(&split, source, target, harness_config(mode, k)),
                );
            }
            for (idx, name) in baselines.iter().enumerate() {
                baseline_series[idx].push(aux as f64, evaluate_baseline(&split, source, name, k));
            }
        }
        series.extend(baseline_series);
        panels.push(FigurePanel {
            direction: direction.label(),
            series,
        });
    }
    panels
}

// ---------------------------------------------------------------------------
// Table 2: genre partition of the MovieLens stand-in
// ---------------------------------------------------------------------------

/// Table 2 rows: `(genre, movie count, sub-domain)` plus the resulting sub-domain sizes.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// `(genre name, movie count, "D1" | "D2")` rows.
    pub rows: Vec<(String, usize, &'static str)>,
    /// Number of items assigned to D1 and to D2.
    pub domain_sizes: (usize, usize),
}

/// Table 2: the genre-based sub-domain partition of the MovieLens-like trace.
pub fn table2(scale: Scale) -> Table2Result {
    let ds = movielens_like(scale);
    let (_, partition) = ds.partition();
    Table2Result {
        rows: partition.table_rows(&ds.item_genres),
        domain_sizes: partition.domain_sizes(),
    }
}

// ---------------------------------------------------------------------------
// Table 3: homogeneous setting (NX-Map vs X-Map vs ALS)
// ---------------------------------------------------------------------------

/// Table 3: MAE of NX-Map, X-Map and ALS in the homogeneous (single-dataset,
/// genre-partitioned) setting.
pub fn table3(scale: Scale) -> Vec<(String, f64)> {
    let ds = movielens_like(scale);
    let (matrix, _) = ds.partition();
    // Hide a random subset of the D2 ratings and predict them from the rest.
    let (train_all, test_all) = random_holdout(&matrix, 0.2, 11);
    let test: Vec<Rating> = test_all
        .into_iter()
        .filter(|r| matrix.item_domain(r.item) == DomainId::TARGET)
        .collect();

    let mut results = Vec::new();
    for mode in [XMapMode::NxMapItemBased, XMapMode::XMapItemBased] {
        let model = XMapModel::fit(
            &train_all,
            DomainId::SOURCE,
            DomainId::TARGET,
            harness_config(mode, 40),
        )
        .expect("partitioned dataset contains both sub-domains"); // lint: panic — reviewed invariant
        let outcome = evaluate_predictions(&test, |u, i| model.predict(u, i));
        let label = if mode == XMapMode::NxMapItemBased {
            "NX-Map"
        } else {
            "X-Map"
        };
        results.push((label.to_string(), outcome.mae));
    }

    let als = xmap_cf::als::AlsModel::train(
        &train_all,
        xmap_cf::als::AlsConfig {
            factors: 8,
            iterations: 10,
            ..Default::default()
        },
    )
    .expect("training matrix is non-empty"); // lint: panic — reviewed invariant
    let outcome = evaluate_predictions(&test, |u, i| als.predict(u, i));
    results.push(("MLlib-ALS".to_string(), outcome.mae));
    results
}

// ---------------------------------------------------------------------------
// Figure 11: scalability (speedup vs number of machines)
// ---------------------------------------------------------------------------

/// Figure 11: simulated speedup of X-Map and of ALS as the machine count grows, relative
/// to 5 machines (§6.6). X-Map's per-task costs come from the fitted pipeline's extension
/// work estimates; ALS's from per-user factor-solve costs (profile lengths).
pub fn fig11(scale: Scale) -> Vec<SweepSeries> {
    let ds = amazon_like(scale);
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        harness_config(XMapMode::NxMapItemBased, 40),
    )
    .expect("generated dataset always contains both domains"); // lint: panic — reviewed invariant
    let machines: Vec<usize> = (4..=20).collect();
    let baseline = 5;

    let xmap_sim = ClusterSim::new(
        model.stats().extension_task_costs.clone(),
        ClusterCostModel::xmap_like(),
    );
    let als_costs: Vec<f64> = ds
        .matrix
        .users()
        .map(|u| 1.0 + ds.matrix.user_degree(u) as f64)
        .collect();
    let als_sim = ClusterSim::new(als_costs, ClusterCostModel::als_like());

    let mut out = Vec::new();
    for (label, sim) in [("X-MAP", &xmap_sim), ("MLLIB-ALS", &als_sim)] {
        let mut series = SweepSeries::new(label);
        for point in sim.speedup_curve(&machines, baseline) {
            series.push(point.machines as f64, point.speedup);
        }
        out.push(series);
    }
    out
}

// ---------------------------------------------------------------------------
// Helper reused by tests and the figures binary
// ---------------------------------------------------------------------------

/// Returns the underlying Amazon-like dataset plus a default cold-start split for a
/// direction — exposed so integration tests and examples can reuse the exact harness
/// protocol.
pub fn harness_split(
    scale: Scale,
    direction: Direction,
) -> (CrossDomainDataset, CrossDomainSplit, DomainId, DomainId) {
    let ds = amazon_like(scale);
    let (source, target) = direction.domains();
    let split = CrossDomainSplit::build(&ds, target, default_split());
    (ds, split, source, target)
}

/// Convenience: the MAE of one X-Map mode under the default harness protocol.
pub fn quick_mae(mode: XMapMode, direction: Direction) -> f64 {
    let (_, split, source, target) = harness_split(Scale::Quick, direction);
    evaluate_xmap(&split, source, target, harness_config(mode, 40))
}

/// The training matrix statistic used in reports: ratings, users, items.
pub fn describe_matrix(matrix: &RatingMatrix) -> String {
    format!(
        "{} ratings, {} users, {} items",
        matrix.n_ratings(),
        matrix.n_users(),
        matrix.n_items()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_metapaths_dominate_standard_similarities() {
        let r = fig1b(Scale::Quick);
        assert!(
            r.metapath_based > r.standard,
            "meta-path similarities ({}) must exceed standard ones ({})",
            r.metapath_based,
            r.standard
        );
        assert!(r.standard > 0);
    }

    #[test]
    fn nxmap_beats_the_unpersonalised_baseline() {
        // The core accuracy claim of Figures 8-9: the non-private X-Map variants
        // outperform ItemAverage and RemoteUser in the cold-start setting.
        let (_, split, source, target) = harness_split(Scale::Quick, Direction::MovieToBook);
        let nxmap = evaluate_xmap(
            &split,
            source,
            target,
            harness_config(XMapMode::NxMapItemBased, 40),
        );
        let item_avg = evaluate_baseline(&split, source, "ITEMAVERAGE", 40);
        assert!(
            nxmap < item_avg + 0.05,
            "NX-Map ({nxmap:.3}) should be at least competitive with ItemAverage ({item_avg:.3})"
        );
    }

    #[test]
    fn private_variant_pays_a_bounded_quality_cost() {
        let nx = quick_mae(XMapMode::NxMapItemBased, Direction::MovieToBook);
        let x = quick_mae(XMapMode::XMapItemBased, Direction::MovieToBook);
        assert!(
            x >= nx - 0.05,
            "privacy should not improve accuracy (got {x:.3} vs {nx:.3})"
        );
        assert!(
            x < nx + 1.5,
            "privacy cost should stay bounded (got {x:.3} vs {nx:.3})"
        );
    }

    #[test]
    fn fig11_xmap_scales_better_than_als() {
        let series = fig11(Scale::Quick);
        assert_eq!(series.len(), 2);
        let xmap = &series[0];
        let als = &series[1];
        assert_eq!(xmap.label, "X-MAP");
        // speedup at 20 machines (last point) must favour X-Map
        let x_last = xmap.points.last().unwrap().y;
        let a_last = als.points.last().unwrap().y;
        assert!(
            x_last > a_last,
            "X-Map should out-scale ALS: {x_last} vs {a_last}"
        );
        assert!(
            x_last > 1.5,
            "X-Map should show a clear speedup over the 5-machine baseline"
        );
        // speedup is 1.0 at the baseline of 5 machines
        let at5 = xmap
            .points
            .iter()
            .find(|p| (p.x - 5.0).abs() < 1e-9)
            .unwrap();
        assert!((at5.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_partition_is_balanced_and_complete() {
        let t = table2(Scale::Quick);
        assert_eq!(t.rows.len(), xmap_dataset::genres::MOVIELENS_GENRES.len());
        let (d1, d2) = t.domain_sizes;
        assert!(d1 > 0 && d2 > 0);
        assert_eq!(d1 + d2, 150);
    }

    #[test]
    fn describe_matrix_reports_counts() {
        let ds = crate::datasets::amazon_like_small();
        let s = describe_matrix(&ds.matrix);
        assert!(s.contains("ratings"));
        assert!(s.contains("users"));
    }
}
