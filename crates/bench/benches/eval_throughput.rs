//! Throughput of the engine-parallel evaluation path.
//!
//! The headline comparison is the same MAE/ranking evaluation workload executed three
//! ways over one fitted model:
//!
//! * `serial_loop` — the historical reference: `evaluate_batch_serial`, one `predict`
//!   call per hidden triple and one `recommend` call per ranking case, on the calling
//!   thread (its error half is exactly `evaluate_predictions`).
//! * `eval_stage_workers_1` — the `EvalStage` on a single-worker dataflow: the same
//!   work as one partitioned pool task bag (measures pure stage overhead).
//! * `eval_stage_workers_8` — the same stage with eight workers: the speedup the
//!   paper's §6 sweeps get from running evaluation on the engine.
//!
//! All paths release bit-identical reports (asserted before timing), so the measured
//! gaps are pure execution cost. Setting `XMAP_BENCH_SMOKE=1` shrinks the workload so
//! CI can execute the bench end to end in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xmap_bench::experiments::Direction;
use xmap_bench::{amazon_like, Scale, SweepRunner};
use xmap_core::{XMapConfig, XMapMode};
use xmap_dataset::split::SplitConfig;
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
use xmap_engine::{ClusterCostModel, Dataflow};
use xmap_eval::{evaluate_batch_serial, EvalStage, EVAL_STAGE_NAME};

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The measured workload. Smoke mode reuses the Quick harness trace (seconds, CI);
/// the real measurement needs thousands of hidden triples so the per-partition work
/// outweighs the pool's thread-spawn overhead — an overlap-heavy variant of the
/// Amazon-like trace provides that (~120 test users at a 0.4 test fraction).
fn workload() -> CrossDomainDataset {
    if smoke() {
        amazon_like(Scale::Quick)
    } else {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 150,
            n_target_items: 150,
            n_source_only_users: 200,
            n_target_only_users: 200,
            n_overlap_users: 300,
            ratings_per_user: 30,
            latent_dim: 3,
            noise: 0.25,
            seed: 7,
            popularity_skew: 0.0,
        })
    }
}

fn bench_eval_throughput(c: &mut Criterion) {
    let base = XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: if smoke() { 10 } else { 25 },
        ..Default::default()
    };
    let runner =
        SweepRunner::new(workload(), Direction::MovieToBook, base).with_split(SplitConfig {
            test_fraction: if smoke() { 0.3 } else { 0.4 },
            ..SplitConfig::default()
        });
    let split = runner.split(None);
    let mut batch = runner.eval_batch(&split);
    if smoke() {
        batch.test.truncate(60);
        batch.ranking.truncate(10);
    }
    let model = runner.fit(&split);

    // Every path must release the same bits before its speed means anything.
    let reference = evaluate_batch_serial(&model, &batch);
    for workers in [1usize, 8] {
        let flow = Dataflow::new(workers, 64);
        let staged = flow.run(&EvalStage::new(&model), batch.clone());
        assert!(
            staged.bits_eq(&reference),
            "{workers}-worker EvalStage diverged from the serial loop"
        );
    }

    // Headline number for the PR: wall-clock ratio of the serial loop to the 8-worker
    // stage over one batch (the criterion groups below give stable per-path medians).
    let time_once = |f: &dyn Fn()| {
        let start = Instant::now();
        f();
        start.elapsed()
    };
    // The stage consumes an owned batch, so a clone is unavoidable inside its timed
    // region; charge the serial path the same clone so the comparison stays pure
    // execution cost.
    let serial_time = time_once(&|| {
        let owned = batch.clone();
        criterion::black_box(evaluate_batch_serial(&model, &owned));
    });
    let flow8 = Dataflow::new(8, 64);
    let staged_time = time_once(&|| {
        criterion::black_box(flow8.run(&EvalStage::new(&model), batch.clone()));
    });
    println!(
        "eval_throughput: serial_loop {serial_time:?} vs eval_stage_workers_8 {staged_time:?} => {:.1}x \
         ({} triples, {} ranking users)",
        serial_time.as_secs_f64() / staged_time.as_secs_f64().max(1e-12),
        batch.test.len(),
        batch.ranking.len()
    );
    // On a single-core host real threads cannot beat the serial loop; per DESIGN.md the
    // recorded task bag is what scales, so also report the simulated cluster speedup of
    // the "eval" ledger (the same substitution rule Figure 11 uses).
    let sim = flow8
        .cluster_sim(EVAL_STAGE_NAME, ClusterCostModel::xmap_like())
        .expect("evaluation records task costs");
    println!(
        "eval_throughput: simulated cluster speedup over 1 machine: {:.1}x at 4, {:.1}x at 8 \
         ({} tasks, total work {:.0})",
        sim.speedup(4, 1),
        sim.speedup(8, 1),
        sim.n_tasks(),
        sim.total_work()
    );

    let mut group = c.benchmark_group("eval_throughput");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("serial_loop", |b| {
        b.iter(|| {
            // same per-iteration clone as the staged paths (see above)
            let owned = batch.clone();
            evaluate_batch_serial(&model, &owned)
        })
    });
    for workers in [1usize, 8] {
        group.bench_function(format!("eval_stage_workers_{workers}"), |b| {
            let flow = Dataflow::new(workers, 64);
            b.iter(|| flow.run(&EvalStage::new(&model), batch.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_throughput);
criterion_main!(benches);
