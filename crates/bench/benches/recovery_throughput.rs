//! Throughput of durable model state (`XMapModel::persist` / `open` / `compact`).
//!
//! The claim under test is the recovery contract: a model recovered from its
//! snapshot + delta journal is **bit-identical** to the in-memory model that wrote
//! them, and recovery cost splits into a snapshot load (proportional to the model)
//! plus a journal replay (proportional to the journaled deltas) that compaction
//! folds away.
//!
//! Deterministic checks run before anything is timed:
//!
//! 1. **bit-identity** — after a persist and a batch of journaled deltas, `open`
//!    rebuilds the exact graph arena, X-Sim table and probe prediction bits;
//! 2. **compaction win** — `compact` shrinks the journal to its bare header and the
//!    recovered bits stay identical.
//!
//! The measured figures: snapshot size and write/load rate, journal replay rate
//! (records/s through the `apply_delta` path), and recovery wall clock before vs
//! after compaction. `XMAP_BENCH_SMOKE=1` shrinks everything so CI runs the bench
//! end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::Instant;
use xmap_cf::{DomainId, ItemId, RatingMatrix, UserId};
use xmap_core::{RatingDelta, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workload() -> CrossDomainDataset {
    if smoke() {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 80,
            n_target_items: 80,
            n_source_only_users: 60,
            n_target_only_users: 60,
            n_overlap_users: 40,
            ratings_per_user: 6,
            latent_dim: 2,
            noise: 0.3,
            seed: 11,
            popularity_skew: 0.0,
        })
    } else {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 250,
            n_target_items: 250,
            n_source_only_users: 300,
            n_target_only_users: 300,
            n_overlap_users: 200,
            ratings_per_user: 10,
            latent_dim: 3,
            noise: 0.25,
            seed: 11,
            popularity_skew: 0.0,
        })
    }
}

fn config() -> XMapConfig {
    XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: if smoke() { 8 } else { 20 },
        workers: 1,
        partitions: 64,
        ..Default::default()
    }
}

fn fit(matrix: &RatingMatrix) -> XMapModel {
    XMapModel::fit(matrix, DomainId::SOURCE, DomainId::TARGET, config())
        .expect("bench workloads contain both domains")
}

fn probe_bits(model: &XMapModel, users: &[UserId], items: &[ItemId]) -> Vec<u64> {
    users
        .iter()
        .flat_map(|&u| items.iter().map(move |&i| (u, i)).collect::<Vec<_>>())
        .map(|(u, i)| model.predict(u, i).to_bits())
        .collect()
}

/// One small deterministic delta per journal record, each touching a distinct
/// (user, item) pair so every replayed record does real graph surgery.
fn delta_stream(ds: &CrossDomainDataset, n: usize) -> Vec<RatingDelta> {
    let users = &ds.overlap_users;
    let items = ds.target_items();
    (0..n)
        .map(|ix| {
            let mut delta = RatingDelta::new();
            delta.push_timed(
                users[ix % users.len()].0,
                items[(ix * 7) % items.len()].0,
                ((ix % 5) + 1) as f64,
                1000 + ix as u32,
            );
            delta
        })
        .collect()
}

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xmap_recovery_bench_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_recovery_throughput(c: &mut Criterion) {
    let ds = workload();
    let n_records = if smoke() { 16 } else { 128 };
    let probe_users: Vec<UserId> = ds.overlap_users.iter().copied().take(8).collect();
    let probe_items: Vec<ItemId> = ds.target_items().into_iter().take(8).collect();

    // --- Correctness first: persist + journal + open must round-trip the bits. ---
    let dir = store_dir("main");
    let model = fit(&ds.matrix);
    let start = Instant::now();
    model.persist(&dir).expect("persist succeeds");
    let snapshot_write = start.elapsed();
    let snapshot_bytes = std::fs::metadata(dir.join(xmap_core::SNAPSHOT_FILE))
        .expect("snapshot exists")
        .len();

    for delta in &delta_stream(&ds, n_records) {
        model.apply_delta(delta).expect("delta applies cleanly");
    }
    let journal_bytes = model.journal_len_bytes().expect("store attached");

    let start = Instant::now();
    let recovered = XMapModel::open(&dir).expect("recovery succeeds");
    let recover_time = start.elapsed();
    assert_eq!(
        recovered.epoch(),
        1 + n_records as u64,
        "recovery must replay every journaled record"
    );
    assert_eq!(
        recovered.graph(),
        model.graph(),
        "recovered graph arena diverged from the live model"
    );
    assert_eq!(
        recovered.xsim(),
        model.xsim(),
        "recovered X-Sim table diverged from the live model"
    );
    assert_eq!(
        probe_bits(&recovered, &probe_users, &probe_items),
        probe_bits(&model, &probe_users, &probe_items),
        "recovered predictions diverged from the live model"
    );
    println!(
        "recovery_throughput: snapshot {snapshot_bytes} B over {} ratings \
         ({:.1} B/rating), written in {snapshot_write:?}",
        ds.matrix.n_ratings(),
        snapshot_bytes as f64 / ds.matrix.n_ratings() as f64
    );
    println!(
        "recovery_throughput: journal {journal_bytes} B / {n_records} records; \
         snapshot + replay recovered in {recover_time:?} \
         ({:.0} records/s through apply_delta)",
        n_records as f64 / recover_time.as_secs_f64().max(1e-12)
    );

    // --- Compaction win: the journal folds into the snapshot, recovery gets cheap
    // again, and the bits never move. ---
    let before_bits = probe_bits(&model, &probe_users, &probe_items);
    model.compact().expect("compaction succeeds");
    let compacted_journal = model.journal_len_bytes().expect("store attached");
    assert!(
        compacted_journal < journal_bytes,
        "compaction must shrink the journal ({journal_bytes} -> {compacted_journal} B)"
    );
    let start = Instant::now();
    let reopened = XMapModel::open(&dir).expect("recovery after compaction succeeds");
    let compacted_recover = start.elapsed();
    assert_eq!(
        probe_bits(&reopened, &probe_users, &probe_items),
        before_bits,
        "compaction changed the released bits"
    );
    println!(
        "recovery_throughput: compaction win: journal {journal_bytes} -> {compacted_journal} B, \
         recovery {recover_time:?} -> {compacted_recover:?}"
    );

    // --- Timed groups: snapshot write, pure-snapshot recovery, snapshot + replay. ---
    let mut group = c.benchmark_group("recovery_throughput");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("persist_snapshot", |b| {
        let dir = store_dir("persist");
        b.iter(|| model.persist(&dir).expect("persist succeeds"))
    });
    group.bench_function("open_compacted", |b| {
        // `dir` was just compacted: this measures the snapshot-load half alone.
        b.iter(|| XMapModel::open(&dir).expect("recovery succeeds"))
    });
    group.bench_function(format!("open_with_{n_records}_record_replay"), |b| {
        let replay_dir = store_dir("replay");
        let fresh = fit(&ds.matrix);
        fresh.persist(&replay_dir).expect("persist succeeds");
        for delta in &delta_stream(&ds, n_records) {
            fresh.apply_delta(delta).expect("delta applies cleanly");
        }
        b.iter(|| XMapModel::open(&replay_dir).expect("recovery succeeds"))
    });
    group.finish();

    // `store_dir` deletes before handing the path back, so this is the cleanup.
    for tag in ["main", "persist", "replay"] {
        let _ = store_dir(tag);
    }
}

criterion_group!(benches, bench_recovery_throughput);
criterion_main!(benches);
