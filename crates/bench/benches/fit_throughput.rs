//! Throughput of the engine-parallel model fit.
//!
//! The headline comparison is the same `XMapModel::fit` executed at 1 worker (the
//! serial reference — every stage's partitions processed one after another) and at 8
//! workers (the engine-parallel fit of the baseliner, extender, generator and
//! recommender stages). Both fits release **bit-identical** models by the fit
//! determinism contract, which is asserted before anything is timed — the measured gap
//! is pure execution cost.
//!
//! Because a single-core host cannot show real-thread speedups, the bench also replays
//! the *combined fit task bag* (`XMapModel::fit_task_costs`: baseliner + extender +
//! generator + recommender per-partition costs) on the deterministic cluster simulator,
//! the same substitution rule Figure 11 uses. Setting `XMAP_BENCH_SMOKE=1` shrinks the
//! workload so CI can execute the bench end to end in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xmap_bench::{amazon_like, Scale};
use xmap_cf::{DomainId, ItemId, UserId};
use xmap_core::{XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
use xmap_engine::{ClusterCostModel, ClusterSim};

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The measured workload. Smoke mode reuses the Quick harness trace (seconds, CI); the
/// real measurement wants enough co-rated pairs and items that the per-partition stage
/// work outweighs the pool's thread-spawn overhead.
fn workload() -> CrossDomainDataset {
    if smoke() {
        amazon_like(Scale::Quick)
    } else {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 150,
            n_target_items: 150,
            n_source_only_users: 200,
            n_target_only_users: 200,
            n_overlap_users: 300,
            ratings_per_user: 30,
            latent_dim: 3,
            noise: 0.25,
            seed: 7,
            popularity_skew: 0.0,
        })
    }
}

/// The released bits of a fitted model: sorted replacement table plus probe
/// predictions. Two fits that agree here (and on their task bags) released the same
/// model.
fn released_bits(model: &XMapModel, users: &[UserId], items: &[ItemId]) -> Vec<u64> {
    let mut replacements: Vec<(ItemId, ItemId)> = model.replacements().iter().collect();
    replacements.sort();
    let mut bits: Vec<u64> = replacements
        .into_iter()
        .flat_map(|(a, b)| [u64::from(a.0), u64::from(b.0)])
        .collect();
    for &u in users {
        for &i in items {
            bits.push(model.predict(u, i).to_bits());
        }
    }
    bits
}

fn bench_fit_throughput(c: &mut Criterion) {
    let ds = workload();
    let config = |workers: usize| XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: if smoke() { 10 } else { 25 },
        workers,
        partitions: 64,
        ..Default::default()
    };
    let probe_users: Vec<UserId> = ds.overlap_users.iter().copied().take(10).collect();
    let probe_items: Vec<ItemId> = ds.target_items().into_iter().take(10).collect();

    // Every worker count must release the same bits before its speed means anything.
    let reference = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config(1))
        .expect("workload contains both domains");
    let reference_bits = released_bits(&reference, &probe_users, &probe_items);
    let reference_bag = reference.fit_task_costs();
    assert!(
        !reference_bag.is_empty(),
        "the fit must record task costs for the cluster replay"
    );
    for workers in [2usize, 8] {
        let staged = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(workers),
        )
        .expect("workload contains both domains");
        assert_eq!(
            released_bits(&staged, &probe_users, &probe_items),
            reference_bits,
            "{workers}-worker fit released different bits than the serial fit"
        );
        assert_eq!(
            staged.fit_task_costs(),
            reference_bag,
            "{workers}-worker fit recorded a different task bag"
        );
    }

    // Headline number for the PR: wall-clock ratio of the 1-worker fit to the 8-worker
    // fit (the criterion groups below give stable per-path medians).
    let time_once = |workers: usize| {
        let start = Instant::now();
        criterion::black_box(
            XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                config(workers),
            )
            .expect("workload contains both domains"),
        );
        start.elapsed()
    };
    let serial_time = time_once(1);
    let staged_time = time_once(8);
    println!(
        "fit_throughput: fit_workers_1 {serial_time:?} vs fit_workers_8 {staged_time:?} => {:.1}x \
         ({} ratings, {} items)",
        serial_time.as_secs_f64() / staged_time.as_secs_f64().max(1e-12),
        ds.matrix.n_ratings(),
        ds.matrix.n_items()
    );
    // On a single-core host real threads cannot beat the serial loop; per DESIGN.md the
    // recorded task bag is what scales, so also report the simulated cluster speedup of
    // the combined fit bag (the same substitution rule Figure 11 uses).
    let sim = ClusterSim::new(reference_bag, ClusterCostModel::xmap_like());
    println!(
        "fit_throughput: simulated cluster speedup over 1 machine: {:.1}x at 4, {:.1}x at 8 \
         ({} tasks, total work {:.0})",
        sim.speedup(4, 1),
        sim.speedup(8, 1),
        sim.n_tasks(),
        sim.total_work()
    );

    let mut group = c.benchmark_group("fit_throughput");
    group.sample_size(if smoke() { 2 } else { 10 });
    for workers in [1usize, 8] {
        group.bench_function(format!("fit_workers_{workers}"), |b| {
            b.iter(|| {
                XMapModel::fit(
                    &ds.matrix,
                    DomainId::SOURCE,
                    DomainId::TARGET,
                    config(workers),
                )
                .expect("workload contains both domains")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit_throughput);
criterion_main!(benches);
