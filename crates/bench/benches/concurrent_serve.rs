//! Serve-while-updating: readers against epoch-published snapshots during ingestion.
//!
//! The claim under test is the epoch-publication contract: a model absorbing rating
//! deltas keeps answering top-N queries from wait-free snapshot readers, and the
//! interleaving changes *which* epoch a read observes — never the bits an epoch answers
//! with. Two deterministic gates run before anything is timed, in **all four modes** at
//! **1, 2 and 8 readers**:
//!
//! 1. **bit-identity at epoch boundaries** — every interleaved read is bit-equal to the
//!    same read against the serialized schedule (a fresh fit plus the same deltas
//!    applied one at a time) at the read's observed epoch; the published epoch sequence
//!    itself must be exactly `fit, +1, +1, ...`.
//! 2. **wait-free readers** — reader p99 latency *during* ingestion stays within 2x of
//!    idle-model serving at the same reader count (best-of-3 trials and a small
//!    absolute floor absorb scheduler noise on micro-latency reads; the contract being
//!    guarded is "readers never block on the writer", not a micro-benchmark).
//!
//! The criterion group then times the interleaved driver idle vs during ingestion.
//! `XMAP_BENCH_SMOKE=1` shrinks the read volume so CI runs the bench end to end (the
//! `concurrent-smoke` job).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xmap_cf::knn::Profile;
use xmap_cf::{DomainId, ItemId};
use xmap_core::{PrivacyConfig, RatingDelta, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

const TOP_N: usize = 5;
const READER_COUNTS: [usize; 3] = [1, 2, 8];
/// Noise guard for the p99 gate: micro-latency reads on a shared CI core can be
/// descheduled for longer than an entire idle batch takes; latencies below the floor
/// are treated as "instant" rather than gated on their exact ratio.
const P99_FLOOR: Duration = Duration::from_micros(200);

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workload() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig {
        n_source_items: 60,
        n_target_items: 60,
        n_source_only_users: 50,
        n_target_only_users: 50,
        n_overlap_users: 30,
        ratings_per_user: 8,
        latent_dim: 3,
        noise: 0.3,
        seed: 11,
        popularity_skew: 0.0,
    })
}

fn config(mode: XMapMode) -> XMapConfig {
    XMapConfig {
        mode,
        k: 8,
        privacy: match mode {
            XMapMode::XMapUserBased => PrivacyConfig::user_based_default(),
            _ => PrivacyConfig::default(),
        },
        ..Default::default()
    }
}

fn fit(ds: &CrossDomainDataset, mode: XMapMode) -> XMapModel {
    XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config(mode))
        .expect("the bench workload contains both domains")
}

/// Three deterministic ingest batches over existing overlap users and target items —
/// each publishes one epoch during the interleaved run.
fn deltas(ds: &CrossDomainDataset) -> Vec<RatingDelta> {
    let users = &ds.overlap_users;
    let items = ds.target_items();
    (0..3usize)
        .map(|batch| {
            let mut delta = RatingDelta::new();
            for ev in 0..4usize {
                let ix = batch * 4 + ev;
                let u = users[ix % users.len()];
                let i = items[(ix * 5) % items.len()];
                delta.push_timed(u.0, i.0, ((ix % 5) + 1) as f64, 2000 + ix as u32);
            }
            delta
        })
        .collect()
}

/// The served request set: AlterEgo profiles of source-side users, tiled to
/// `total_reads` requests so the reader pool stays busy across every ingest.
fn queries(model: &XMapModel, ds: &CrossDomainDataset, total_reads: usize) -> Vec<Profile> {
    let seeds: Vec<Profile> = ds
        .overlap_users
        .iter()
        .chain(ds.source_only_users.iter())
        .take(8)
        .map(|&u| model.alterego(u).profile)
        .collect();
    (0..total_reads)
        .map(|ix| seeds[ix % seeds.len()].clone())
        .collect()
}

type AnswerBits = Vec<(ItemId, u64)>;

fn bits(answer: &[(ItemId, f64)]) -> AnswerBits {
    answer.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

/// The serialized-schedule reference: a fresh fit, then the same deltas applied one at
/// a time, capturing every query's answer at every epoch boundary. `tables[e - 1][q]`
/// is query `q`'s bit-exact answer at epoch `e`.
fn reference_tables(
    ds: &CrossDomainDataset,
    mode: XMapMode,
    updates: &[RatingDelta],
    requests: &[Profile],
) -> Vec<Vec<AnswerBits>> {
    let model = fit(ds, mode);
    let answers = |m: &XMapModel| -> Vec<AnswerBits> {
        let (_, snap) = m.snapshot();
        requests
            .iter()
            .map(|p| bits(&snap.recommend_for_profile(p, TOP_N)))
            .collect()
    };
    let mut tables = vec![answers(&model)];
    for delta in updates {
        model
            .apply_delta(delta)
            .expect("the serialized reference applies every delta");
        tables.push(answers(&model));
    }
    tables
}

/// p99 of one interleaved run; `best_of` trials keep transient scheduler stalls out of
/// the gate (the same model is reused — re-applying an identical delta is idempotent on
/// the matrix and still exercises the full publish path).
fn p99_of(
    model: &XMapModel,
    requests: &[Profile],
    readers: usize,
    updates: &[RatingDelta],
    best_of: usize,
) -> Duration {
    (0..best_of)
        .map(|_| {
            let (_, report) = model
                .serve_concurrent(requests, TOP_N, readers, updates)
                .expect("bench deltas apply cleanly");
            report.read_p99()
        })
        .min()
        .expect("at least one trial runs")
}

fn interleave_gate() {
    let ds = workload();
    let updates = deltas(&ds);
    // Enough reads that OS scheduler-quantum stragglers (a read descheduled while the
    // ingest thread holds a timeslice on a shared core — CPU contention, not a lock)
    // stay below the 1% the p99 discards. The gate targets what the design controls:
    // readers never wait for a *delta* to complete, only for a core.
    let total_reads = if smoke() { 1500 } else { 3000 };
    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        let probe = fit(&ds, mode);
        let requests = queries(&probe, &ds, total_reads);
        let tables = reference_tables(&ds, mode, &updates, &requests);
        for readers in READER_COUNTS {
            let model = fit(&ds, mode);
            let (reads, report) = model
                .serve_concurrent(&requests, TOP_N, readers, &updates)
                .expect("the interleaved run applies every delta");
            assert_eq!(
                reads.len(),
                requests.len(),
                "{mode:?}/{readers}r: lost reads"
            );
            assert_eq!(
                model.epoch(),
                1 + updates.len() as u64,
                "{mode:?}/{readers}r: every delta must publish exactly one epoch"
            );
            // 1. bit-identity at the observed epoch boundary, for every read
            for (q, read) in reads.iter().enumerate() {
                assert!(
                    (1..=1 + updates.len() as u64).contains(&read.epoch),
                    "{mode:?}/{readers}r: read {q} observed unpublished epoch {}",
                    read.epoch
                );
                assert_eq!(
                    bits(&read.recommendations),
                    tables[(read.epoch - 1) as usize][q],
                    "{mode:?}/{readers}r: read {q} diverged from the serialized \
                     schedule at epoch {}",
                    read.epoch
                );
            }
            // the ingest worker's published epochs are the serialized sequence
            let published: Vec<u64> = report.ingests.iter().map(|i| i.epoch).collect();
            assert_eq!(
                published,
                (2..=1 + updates.len() as u64).collect::<Vec<_>>(),
                "{mode:?}/{readers}r: published epochs out of sequence"
            );
            // both sides of the interleave landed in ledgers
            assert_eq!(
                model
                    .concurrent_read_task_costs()
                    .expect("reads record task costs")
                    .len(),
                requests.len()
            );
            assert_eq!(
                model
                    .concurrent_ingest_task_costs()
                    .expect("ingests record task costs")
                    .len(),
                updates.len()
            );

            // 2. wait-free readers: p99 during ingestion within 2x of idle serving
            let idle = p99_of(&model, &requests, readers, &[], 5);
            let during = p99_of(&model, &requests, readers, &updates, 5);
            let observed: Vec<u64> = report.reads.iter().map(|r| r.epoch).collect();
            let span = (
                observed.iter().min().copied().unwrap_or(0),
                observed.iter().max().copied().unwrap_or(0),
            );
            println!(
                "concurrent_serve[{} @ {readers}r, epoch {}]: idle p99 {idle:?} vs during-ingest \
                 p99 {during:?}; reads observed epochs {}..={}",
                probe.label(),
                model.epoch(),
                span.0,
                span.1
            );
            assert!(
                during <= (idle.max(P99_FLOOR)) * 2,
                "{mode:?}/{readers}r: ingestion stalled readers: p99 {during:?} vs idle {idle:?}"
            );
        }
    }
}

fn bench_concurrent_serve(c: &mut Criterion) {
    interleave_gate();

    let ds = workload();
    let updates = deltas(&ds);
    let model = fit(&ds, XMapMode::NxMapItemBased);
    let requests = queries(&model, &ds, if smoke() { 300 } else { 1000 });
    let mut group = c.benchmark_group("concurrent_serve");
    group.sample_size(if smoke() { 2 } else { 10 });
    for readers in [1usize, 4] {
        group.bench_function(format!("idle_readers_{readers}"), |b| {
            b.iter(|| {
                model
                    .serve_concurrent(&requests, TOP_N, readers, &[])
                    .expect("idle serving cannot fail")
            })
        });
        group.bench_function(format!("during_ingest_readers_{readers}"), |b| {
            b.iter(|| {
                model
                    .serve_concurrent(&requests, TOP_N, readers, &updates)
                    .expect("bench deltas apply cleanly")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_serve);
criterion_main!(benches);
