//! Throughput of incremental model maintenance (`XMapModel::apply_delta`).
//!
//! The claim under test is the delta-fit contract: absorbing a rating delta costs work
//! proportional to the **delta's co-rating neighbourhood**, not to the trace, while
//! releasing bits identical to a full refit on the updated matrix.
//!
//! Three deterministic checks run before anything is timed:
//!
//! 1. **bit-identity** — the delta-fitted model's graph, X-Sim table and probe
//!    predictions equal a full refit's (the `tests/incremental_equivalence.rs` gate,
//!    re-asserted here on the bench workload);
//! 2. **delta-size scaling** — the `"delta"` ledger's total data-derived cost is
//!    non-decreasing in the delta size and strictly below the full refit's combined
//!    fit bag (`XMapModel::fit_task_costs`) — the incremental work is a strict subset;
//! 3. **trace-size scaling** — for a fixed-shape delta, the delta-to-refit cost ratio
//!    shrinks as the trace grows: update cost tracks the delta, refit cost the trace.
//!
//! The wall-clock comparison (apply_delta vs full refit) and a `ClusterSim` replay of
//! the delta bag follow. `XMAP_BENCH_SMOKE=1` shrinks everything so CI runs the bench
//! end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xmap_cf::{DomainId, ItemId, RatingMatrix, UserId};
use xmap_core::{RatingDelta, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
use xmap_engine::{ClusterCostModel, ClusterSim};

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The measured workload: deliberately **sparse** (few ratings per user over a wide
/// catalogue), like the real traces of the paper — the incremental advantage is a
/// locality property, and a tiny dense trace where every item co-rates with every
/// other would make any delta's neighbourhood the whole graph.
fn workload() -> CrossDomainDataset {
    if smoke() {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 80,
            n_target_items: 80,
            n_source_only_users: 60,
            n_target_only_users: 60,
            n_overlap_users: 40,
            ratings_per_user: 6,
            latent_dim: 2,
            noise: 0.3,
            seed: 7,
            popularity_skew: 0.0,
        })
    } else {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 250,
            n_target_items: 250,
            n_source_only_users: 300,
            n_target_only_users: 300,
            n_overlap_users: 200,
            ratings_per_user: 10,
            latent_dim: 3,
            noise: 0.25,
            seed: 7,
            popularity_skew: 0.0,
        })
    }
}

/// A larger trace with the *same* item catalogue shape, for the trace-size scaling
/// check: the fixed delta below touches the same users/items in both.
fn larger_workload() -> CrossDomainDataset {
    let base = workload().config;
    CrossDomainDataset::generate(CrossDomainConfig {
        n_source_only_users: base.n_source_only_users * 3,
        n_target_only_users: base.n_target_only_users * 3,
        n_overlap_users: base.n_overlap_users * 3,
        ..base
    })
}

fn config() -> XMapConfig {
    XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: if smoke() { 8 } else { 20 },
        workers: 1,
        partitions: 64,
        ..Default::default()
    }
}

/// A deterministic delta of `size` rating events over existing overlap users and
/// target items (round-robin), all with fresh timesteps.
fn delta_of_size(ds: &CrossDomainDataset, size: usize) -> RatingDelta {
    let users = &ds.overlap_users;
    let items = ds.target_items();
    let mut delta = RatingDelta::new();
    for ix in 0..size {
        let u = users[ix % users.len()];
        let i = items[(ix * 7) % items.len()];
        delta.push_timed(u.0, i.0, ((ix % 5) + 1) as f64, 1000 + ix as u32);
    }
    delta
}

fn fit(matrix: &RatingMatrix) -> XMapModel {
    XMapModel::fit(matrix, DomainId::SOURCE, DomainId::TARGET, config())
        .expect("bench workloads contain both domains")
}

fn probe_bits(model: &XMapModel, users: &[UserId], items: &[ItemId]) -> Vec<u64> {
    users
        .iter()
        .flat_map(|&u| items.iter().map(move |&i| (u, i)).collect::<Vec<_>>())
        .map(|(u, i)| model.predict(u, i).to_bits())
        .collect()
}

fn bench_update_throughput(c: &mut Criterion) {
    let ds = workload();
    let delta_sizes: &[usize] = if smoke() {
        &[1, 8, 32]
    } else {
        &[1, 8, 64, 256]
    };
    let probe_users: Vec<UserId> = ds.overlap_users.iter().copied().take(8).collect();
    let probe_items: Vec<ItemId> = ds.target_items().into_iter().take(8).collect();

    // --- 1 + 2: bit-identity and delta-size scaling of the data-derived cost. ---
    let mut previous_cost = 0.0f64;
    for &size in delta_sizes {
        let delta = delta_of_size(&ds, size);
        let model = fit(&ds.matrix);
        let report = model.apply_delta(&delta).expect("delta applies cleanly");
        assert_eq!(report.n_delta_ratings, size);
        let delta_cost: f64 = model
            .delta_task_costs()
            .expect("apply_delta records its task bag")
            .iter()
            .sum();
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), delta.item_domains())
            .unwrap();
        let refit = fit(&updated);
        assert_eq!(
            model.graph(),
            refit.graph(),
            "delta size {size}: graph diverged from the full refit"
        );
        assert_eq!(
            model.xsim(),
            refit.xsim(),
            "delta size {size}: X-Sim diverged"
        );
        assert_eq!(
            probe_bits(&model, &probe_users, &probe_items),
            probe_bits(&refit, &probe_users, &probe_items),
            "delta size {size}: predictions diverged"
        );
        let refit_cost: f64 = refit.fit_task_costs().iter().sum();
        assert!(
            delta_cost >= previous_cost,
            "delta cost must not shrink as the delta grows \
             ({size} events: {delta_cost:.0} after {previous_cost:.0})"
        );
        assert!(
            delta_cost < refit_cost,
            "incremental work ({delta_cost:.0}) must stay below the full refit bag \
             ({refit_cost:.0})"
        );
        println!(
            "update_throughput: delta of {size:>4} ratings -> rescored {} pairs, {} xsim rows, \
             {} pools; delta cost {delta_cost:.0} vs refit bag {refit_cost:.0} ({:.1}%)",
            report.n_rescored_pairs,
            report.n_xsim_rows,
            report.n_pool_refits,
            100.0 * delta_cost / refit_cost
        );
        previous_cost = delta_cost;
    }

    // --- 3: trace-size scaling — the same-shape delta on a 3x trace claims a smaller
    // share of the refit work: update cost tracks the delta neighbourhood, refit cost
    // the trace. ---
    let fixed = delta_sizes[1];
    let share = |ds: &CrossDomainDataset| -> (f64, f64) {
        let delta = delta_of_size(ds, fixed);
        let model = fit(&ds.matrix);
        model.apply_delta(&delta).expect("delta applies cleanly");
        let delta_cost: f64 = model.delta_task_costs().unwrap().iter().sum();
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), delta.item_domains())
            .unwrap();
        let refit_cost: f64 = fit(&updated).fit_task_costs().iter().sum();
        (delta_cost, refit_cost)
    };
    let (small_delta, small_refit) = share(&ds);
    let big = larger_workload();
    let (big_delta, big_refit) = share(&big);
    println!(
        "update_throughput: fixed {fixed}-rating delta share: {:.2}% of refit on {} ratings, \
         {:.2}% on {} ratings",
        100.0 * small_delta / small_refit,
        ds.matrix.n_ratings(),
        100.0 * big_delta / big_refit,
        big.matrix.n_ratings()
    );
    assert!(
        big_delta / big_refit < small_delta / small_refit,
        "the incremental advantage must grow with the trace: \
         {big_delta:.0}/{big_refit:.0} vs {small_delta:.0}/{small_refit:.0}"
    );

    // --- Wall clock + cluster replay of the delta bag. ---
    let delta = delta_of_size(&ds, fixed);
    let model = fit(&ds.matrix);
    let start = Instant::now();
    model.apply_delta(&delta).expect("delta applies cleanly");
    let apply_time = start.elapsed();
    let updated = ds
        .matrix
        .apply_delta(delta.ratings(), delta.item_domains())
        .unwrap();
    let start = Instant::now();
    criterion::black_box(fit(&updated));
    let refit_time = start.elapsed();
    println!(
        "update_throughput: apply_delta({fixed}) {apply_time:?} vs full refit {refit_time:?} \
         => {:.1}x",
        refit_time.as_secs_f64() / apply_time.as_secs_f64().max(1e-12)
    );
    let bag = model.delta_task_costs().unwrap();
    let sim = ClusterSim::new(bag, ClusterCostModel::xmap_like());
    println!(
        "update_throughput: simulated cluster replay of the delta bag: {:.1}x at 4, {:.1}x at 8 \
         machines ({} tasks, total work {:.0})",
        sim.speedup(4, 1),
        sim.speedup(8, 1),
        sim.n_tasks(),
        sim.total_work()
    );

    let mut group = c.benchmark_group("update_throughput");
    group.sample_size(if smoke() { 2 } else { 10 });
    for &size in delta_sizes {
        let delta = delta_of_size(&ds, size);
        // Each measured iteration re-applies the same delta to a freshly fitted model;
        // criterion cannot exclude the fit, so the full-refit group below is the
        // baseline to compare slopes against, not absolute numbers.
        group.bench_function(format!("fit_plus_delta_{size}"), |b| {
            b.iter(|| {
                let model = fit(&ds.matrix);
                model.apply_delta(&delta).expect("delta applies cleanly");
                model
            })
        });
    }
    group.bench_function("fit_plus_refit", |b| {
        let delta = delta_of_size(&ds, delta_sizes[delta_sizes.len() - 1]);
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), delta.item_domains())
            .unwrap();
        b.iter(|| {
            criterion::black_box(fit(&ds.matrix));
            fit(&updated)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
