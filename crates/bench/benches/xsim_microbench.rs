//! Microbenchmarks of the X-Sim machinery: baseline graph construction, layer
//! partitioning, cross-domain X-Sim table computation and AlterEgo mapping.
//!
//! These are the per-stage costs of the pipeline of Figure 4 and the ablation data for
//! the layer-based-pruning design choice called out in DESIGN.md. The headline
//! comparison is `xsim_extender`: the seed-equivalent **per-pair** path
//! ([`XSimTable::compute`] — meta-paths materialised, every hop re-resolved through
//! `edge_between`) against the **batched** frontier expansion over the CSR arena
//! ([`XSimTable::compute_batched`] — per-partition scratch, no path materialisation),
//! both single-threaded so the speedup isolates the algorithmic change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmap_bench::{amazon_like, Scale};
use xmap_cf::DomainId;
use xmap_core::XSimTable;
use xmap_engine::{fn_stage, Dataflow, StageContext, WorkerPool};
use xmap_graph::{GraphConfig, LayerPartition, MetaPathConfig, SimilarityGraph};

fn bench_stages(c: &mut Criterion) {
    let ds = amazon_like(Scale::Quick);
    let mut group = c.benchmark_group("xsim_stages");
    group.sample_size(10);

    group.bench_function("baseliner_graph_build", |b| {
        b.iter(|| SimilarityGraph::build(&ds.matrix, GraphConfig::default()))
    });

    let graph = SimilarityGraph::build(&ds.matrix, GraphConfig::default());
    group.bench_function("layer_partition", |b| {
        b.iter(|| LayerPartition::from_graph(&graph))
    });

    let (_, partition) = LayerPartition::from_graph(&graph);
    let pool = WorkerPool::new(1);
    for per_layer_top_k in [3usize, 10, 25] {
        let metapath = MetaPathConfig {
            per_layer_top_k,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("extender_per_pair_top_k", per_layer_top_k),
            &metapath,
            |b, &metapath| {
                b.iter(|| XSimTable::compute(&graph, &partition, DomainId::SOURCE, metapath, &pool))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("extender_batched_top_k", per_layer_top_k),
            &metapath,
            |b, &metapath| {
                b.iter(|| {
                    let flow = Dataflow::new(1, 16);
                    flow.run(
                        &fn_stage(
                            "extender",
                            |g: &SimilarityGraph, cx: &mut StageContext<'_>| {
                                XSimTable::compute_batched(
                                    g,
                                    &partition,
                                    DomainId::SOURCE,
                                    metapath,
                                    cx,
                                )
                            },
                        ),
                        &graph,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
