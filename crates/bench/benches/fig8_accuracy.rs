//! Criterion bench behind Figure 8: end-to-end accuracy runs (fit + cold-start
//! prediction) for the X-Map variants and the linked-domain baseline at k = 20.
//!
//! The wall-clock numbers here are the per-system costs of regenerating one point of
//! Figure 8; the MAE values themselves are produced by the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmap_bench::experiments::{evaluate_baseline, evaluate_xmap, harness_split, Direction};
use xmap_bench::Scale;
use xmap_core::{XMapConfig, XMapMode};

fn bench_fig8(c: &mut Criterion) {
    let (_, split, source, target) = harness_split(Scale::Quick, Direction::MovieToBook);
    let mut group = c.benchmark_group("fig8_accuracy");
    group.sample_size(10);

    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        group.bench_with_input(BenchmarkId::new("xmap", mode.label()), &mode, |b, &mode| {
            b.iter(|| {
                let config = XMapConfig {
                    mode,
                    k: 20,
                    ..Default::default()
                };
                evaluate_xmap(&split, source, target, config)
            })
        });
    }
    for baseline in ["ITEMAVERAGE", "REMOTEUSER", "ITEM-BASED-KNN"] {
        group.bench_with_input(
            BenchmarkId::new("baseline", baseline),
            &baseline,
            |b, &name| b.iter(|| evaluate_baseline(&split, source, name, 20)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
