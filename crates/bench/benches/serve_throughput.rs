//! Throughput of the batched recommendation serving path.
//!
//! The headline comparison is three implementations of the same top-N workload on the
//! private user-based recommender (X-Map-ub), whose serving path used to be quadratic:
//!
//! * `per_call_rescan` — the historical defect, kept as the equivalence oracle
//!   ([`PrivateUserBasedRecommender::recommend_for_profile_rescan`]): every candidate
//!   prediction rebuilds the neighbour pool with a full matrix scan.
//! * `per_call_pooled` — the fixed per-profile path: one pool scan per profile, reused
//!   across every candidate.
//! * `batched_stage` — the [`RecommendStage`] run by the `Dataflow` engine, which adds
//!   partition-level scratch reuse and (with more workers) parallel partitions.
//!
//! All three release bit-identical outputs (asserted before timing), so the measured
//! gaps are pure serving-path cost. A secondary group benches the item-based batched
//! path against its per-call form (dense-scratch reuse across a batch).
//!
//! Setting `XMAP_BENCH_SMOKE=1` shrinks the batch and sample counts so CI can execute
//! the bench as a smoke test in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xmap_bench::{amazon_like, Scale};
use xmap_cf::knn::{profile_from_pairs, Profile};
use xmap_cf::{DomainId, ItemId, RatingMatrix};
use xmap_core::recommend::{
    PrivateItemBasedRecommender, PrivateUserBasedRecommender, ProfileRecommender,
};
use xmap_core::{RecommendStage, ScratchPool, ServeBatch};
use xmap_engine::Dataflow;
use xmap_privacy::PrivacyBudget;

const TOP_N: usize = 10;
const EPSILON_PRIME: f64 = 0.8;

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn target_matrix() -> RatingMatrix {
    let ds = amazon_like(Scale::Quick);
    ds.matrix
        .filter(|r| ds.matrix.item_domain(r.item) == DomainId::TARGET)
        .expect("the trace has target-domain ratings")
}

/// Synthetic AlterEgo-like profiles over the target catalogue.
fn profiles(target: &RatingMatrix, count: usize) -> Vec<Profile> {
    let n_items = target.n_items() as u32;
    (0..count as u32)
        .map(|s| {
            profile_from_pairs((0..6u32).map(|j| {
                let item = ItemId((s.wrapping_mul(37) + j * 11) % n_items);
                (item, 1.0 + ((s + j) % 5) as f64)
            }))
        })
        .collect()
}

fn bench_user_based_serving(c: &mut Criterion) {
    let target = target_matrix();
    let batch_size = if smoke() { 8 } else { 40 };
    let batch = profiles(&target, batch_size);
    let rec = PrivateUserBasedRecommender::fit(
        target.clone(),
        10,
        EPSILON_PRIME,
        0.05,
        42,
        &mut PrivacyBudget::new(EPSILON_PRIME),
    )
    .unwrap();

    // All three paths must release the same bits before their speeds mean anything.
    let reference: Vec<Vec<(ItemId, f64)>> = batch
        .iter()
        .map(|p| rec.recommend_for_profile(p, TOP_N))
        .collect();
    let rescan_sample: Vec<Vec<(ItemId, f64)>> = batch
        .iter()
        .take(2)
        .map(|p| rec.recommend_for_profile_rescan(p, TOP_N))
        .collect();
    assert_eq!(
        &reference[..2],
        &rescan_sample[..],
        "rescan oracle diverged"
    );
    let pool = ScratchPool::new();
    let flow = Dataflow::new(1, 16);
    let batched = flow.run(
        &RecommendStage::new(&rec, &pool),
        ServeBatch::new(&batch, TOP_N),
    );
    assert_eq!(batched, reference, "batched stage diverged");

    // Headline number for the PR: wall-clock ratio of the historical quadratic path to
    // the batched stage over one batch (the criterion groups below give the stable
    // per-path medians).
    let start = Instant::now();
    for p in &batch {
        criterion::black_box(rec.recommend_for_profile_rescan(p, TOP_N));
    }
    let rescan_time = start.elapsed();
    let start = Instant::now();
    criterion::black_box(flow.run(
        &RecommendStage::new(&rec, &pool),
        ServeBatch::new(&batch, TOP_N),
    ));
    let batched_time = start.elapsed();
    println!(
        "serve_throughput/ub: per_call_rescan {rescan_time:?} vs batched_stage {batched_time:?} \
         => {:.1}x",
        rescan_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-12)
    );

    let mut group = c.benchmark_group("serve_throughput_ub");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("per_call_rescan", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|p| rec.recommend_for_profile_rescan(p, TOP_N))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("per_call_pooled", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|p| rec.recommend_for_profile(p, TOP_N))
                .collect::<Vec<_>>()
        })
    });
    for workers in [1usize, 4] {
        group.bench_function(format!("batched_stage_workers_{workers}"), |b| {
            let flow = Dataflow::new(workers, 16);
            let pool = ScratchPool::new();
            b.iter(|| {
                flow.run(
                    &RecommendStage::new(&rec, &pool),
                    ServeBatch::new(&batch, TOP_N),
                )
            })
        });
    }
    group.finish();
}

fn bench_item_based_serving(c: &mut Criterion) {
    let target = target_matrix();
    let batch_size = if smoke() { 8 } else { 40 };
    let batch = profiles(&target, batch_size);
    let rec = PrivateItemBasedRecommender::fit(
        target,
        10,
        EPSILON_PRIME,
        0.05,
        0.0,
        42,
        &mut PrivacyBudget::new(EPSILON_PRIME),
    )
    .unwrap();

    let batch_refs: Vec<&Profile> = batch.iter().collect();
    let reference: Vec<Vec<(ItemId, f64)>> = batch
        .iter()
        .map(|p| rec.recommend_for_profile(p, TOP_N))
        .collect();
    assert_eq!(
        rec.recommend_batch(&batch_refs, TOP_N),
        reference,
        "item-based batch diverged"
    );

    let mut group = c.benchmark_group("serve_throughput_ib");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("per_call", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|p| rec.recommend_for_profile(p, TOP_N))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("batched_scratch_reuse", |b| {
        b.iter(|| rec.recommend_batch(&batch_refs, TOP_N))
    });
    group.finish();
}

criterion_group!(benches, bench_user_based_serving, bench_item_based_serving);
criterion_main!(benches);
