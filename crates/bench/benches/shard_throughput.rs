//! Routed top-N throughput of the sharded model vs the single-node recommender.
//!
//! The claim under test is the sharding contract: routing the model across
//! simulated nodes changes *where* work runs, never what it answers. A
//! deterministic bit-identity gate runs before anything is timed:
//!
//! 1. **bit-identity** — at 1, 2, 4 and 8 nodes, with and without hot-shard
//!    replication, every routed top-N list carries the same items and score
//!    bits as the single-node model;
//! 2. **ledger replay** — the route ledger recorded while serving replays on
//!    `xmap_engine::ShardedCluster` under the paper's cost model, reporting
//!    per-node load, makespan and imbalance (replication must not *worsen*
//!    the imbalance of the routed reads).
//!
//! The measured figures: routed top-N throughput (profiles/s) per node count
//! with and without replication, against the single-node baseline.
//! `XMAP_BENCH_SMOKE=1` shrinks everything so CI runs the bench end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xmap_cf::{DomainId, ItemId, UserId};
use xmap_core::{ShardedModel, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
use xmap_engine::{ClusterCostModel, ShardedCluster};

fn smoke() -> bool {
    std::env::var("XMAP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workload() -> CrossDomainDataset {
    if smoke() {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 80,
            n_target_items: 80,
            n_source_only_users: 60,
            n_target_only_users: 60,
            n_overlap_users: 40,
            ratings_per_user: 6,
            latent_dim: 2,
            noise: 0.3,
            seed: 19,
            popularity_skew: 1.1,
        })
    } else {
        CrossDomainDataset::generate(CrossDomainConfig {
            n_source_items: 250,
            n_target_items: 250,
            n_source_only_users: 300,
            n_target_only_users: 300,
            n_overlap_users: 200,
            ratings_per_user: 12,
            latent_dim: 3,
            noise: 0.25,
            seed: 19,
            popularity_skew: 1.1,
        })
    }
}

fn fit(ds: &CrossDomainDataset) -> XMapModel {
    let config = XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: if smoke() { 8 } else { 20 },
        workers: 1,
        partitions: 64,
        ..Default::default()
    };
    XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config)
        .expect("bench workloads contain both domains")
}

fn shard(ds: &CrossDomainDataset, n_nodes: usize, replicate: bool) -> ShardedModel {
    if replicate {
        ShardedModel::with_hot_replication(fit(ds), n_nodes, 3)
    } else {
        ShardedModel::from_model(fit(ds), n_nodes)
    }
    .expect("sharding a fitted model succeeds")
}

/// The node → hosted-shards assignment of a sharded model, in the shape the
/// engine's cluster simulator replays routed ledgers against.
fn assignment(model: &ShardedModel) -> Vec<Vec<u64>> {
    let map = model.shard_map();
    (0..model.n_nodes())
        .map(|node| {
            (0..map.n_shards() as u32)
                .filter(|&s| map.hosts(s, model.n_nodes()).contains(&node))
                .map(u64::from)
                .collect()
        })
        .collect()
}

fn top_n_bits(recs: &[(ItemId, f64)]) -> Vec<(u32, u64)> {
    recs.iter().map(|&(i, s)| (i.0, s.to_bits())).collect()
}

fn bench_shard_throughput(c: &mut Criterion) {
    let ds = workload();
    let n = 10usize;
    let probes: Vec<UserId> = ds
        .overlap_users
        .iter()
        .copied()
        .take(if smoke() { 12 } else { 64 })
        .collect();

    // --- Correctness first: routed answers must carry the single-node bits. ---
    let reference = fit(&ds);
    let baseline: Vec<Vec<(u32, u64)>> = probes
        .iter()
        .map(|&u| top_n_bits(&reference.recommend(u, n)))
        .collect();

    for n_nodes in [1usize, 2, 4, 8] {
        for replicate in [false, true] {
            let sharded = shard(&ds, n_nodes, replicate);
            for (&u, expect) in probes.iter().zip(&baseline) {
                let routed = sharded
                    .recommend(u, n)
                    .expect("every shard has a live replica");
                assert_eq!(
                    top_n_bits(&routed),
                    *expect,
                    "routed top-{n} diverged at {n_nodes} nodes (replicate={replicate}) for {u}"
                );
            }

            // --- Ledger replay on the simulated cluster. ---
            let cluster = ShardedCluster::new(assignment(&sharded), ClusterCostModel::xmap_like());
            let route = cluster.replay(&sharded.route_ledger());
            let serve = cluster.replay(&sharded.shard_serve_ledger());
            println!(
                "shard_throughput: {n_nodes} nodes replicate={replicate}: route {} tasks \
                 (imbalance {:.2}), serve {} tasks / {:.0} work (makespan {:.2}, imbalance {:.2})",
                route.n_tasks,
                route.imbalance(),
                serve.n_tasks,
                serve.total_work,
                serve.makespan,
                serve.imbalance()
            );

            // --- Wall-clock throughput of the routed path. ---
            let start = Instant::now();
            for &u in &probes {
                let _ = sharded.recommend(u, n).expect("routed serve");
            }
            let elapsed = start.elapsed();
            println!(
                "shard_throughput: {n_nodes} nodes replicate={replicate}: \
                 {:.0} routed top-{n} profiles/s",
                probes.len() as f64 / elapsed.as_secs_f64().max(1e-12)
            );
        }
    }
    let start = Instant::now();
    for &u in &probes {
        let _ = reference.recommend(u, n);
    }
    println!(
        "shard_throughput: single-node baseline: {:.0} top-{n} profiles/s",
        probes.len() as f64 / start.elapsed().as_secs_f64().max(1e-12)
    );

    // --- Timed groups. ---
    let mut group = c.benchmark_group("shard_throughput");
    group.sample_size(if smoke() { 10 } else { 20 });
    group.bench_function("single_node_top_n", |b| {
        b.iter(|| {
            for &u in &probes {
                criterion::black_box(reference.recommend(u, n));
            }
        })
    });
    for n_nodes in [2usize, 8] {
        let plain = shard(&ds, n_nodes, false);
        group.bench_function(format!("routed_top_n_{n_nodes}_nodes"), |b| {
            b.iter(|| {
                for &u in &probes {
                    criterion::black_box(plain.recommend(u, n).expect("routed serve"));
                }
            })
        });
        let replicated = shard(&ds, n_nodes, true);
        group.bench_function(
            format!("routed_top_n_{n_nodes}_nodes_hot_replicated"),
            |b| {
                b.iter(|| {
                    for &u in &probes {
                        criterion::black_box(replicated.recommend(u, n).expect("routed serve"));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_throughput);
criterion_main!(benches);
