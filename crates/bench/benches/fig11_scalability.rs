//! Criterion bench behind Figure 11: the X-Map pipeline fit (the offline job whose
//! scalability the paper measures) and the cluster-simulator speedup computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmap_bench::{amazon_like, Scale};
use xmap_cf::DomainId;
use xmap_core::{XMapConfig, XMapMode, XMapModel};
use xmap_engine::{ClusterCostModel, ClusterSim};

fn bench_pipeline_fit(c: &mut Criterion) {
    let ds = amazon_like(Scale::Quick);
    let mut group = c.benchmark_group("fig11_pipeline_fit");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    XMapModel::fit(
                        &ds.matrix,
                        DomainId::SOURCE,
                        DomainId::TARGET,
                        XMapConfig {
                            mode: XMapMode::NxMapItemBased,
                            k: 20,
                            workers,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_cluster_sim(c: &mut Criterion) {
    let ds = amazon_like(Scale::Quick);
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 20,
            ..Default::default()
        },
    )
    .unwrap();
    let sim = ClusterSim::new(
        model.stats().extension_task_costs.clone(),
        ClusterCostModel::xmap_like(),
    );
    let machines: Vec<usize> = (4..=20).collect();
    let mut group = c.benchmark_group("fig11_cluster_sim");
    group.bench_function("speedup_curve_4_to_20_machines", |b| {
        b.iter(|| sim.speedup_curve(&machines, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_fit, bench_cluster_sim);
criterion_main!(benches);
