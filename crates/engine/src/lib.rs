//! # xmap-engine — parallel dataflow substrate and cluster simulator
//!
//! The paper implements X-Map on Apache Spark and evaluates scalability on a 20-machine
//! cluster (Figure 11). This crate is the stand-in substrate documented in `DESIGN.md`
//! (repository root):
//!
//! * [`dataflow::Stage`] / [`dataflow::Dataflow`] — the unified execution layer. A
//!   pipeline is a sequence of named stages; the `Dataflow` runner owns partitioning,
//!   pool execution and timing, and records each stage's **per-partition task costs** so
//!   that the real worker pool and the cluster simulator consume the *same* task bag.
//!   See `DESIGN.md` for the full `Stage`/`Dataflow` contract.
//! * [`pool::WorkerPool`] — a small thread pool (`std::thread::scope` workers over an
//!   atomic work index) that parallelises the per-partition / per-item stages of the
//!   X-Map pipeline on the local machine, mirroring how Spark parallelises the same
//!   stages across executor cores.
//! * [`partition::Partitioner`] — deterministic hash partitioning of keys into `p`
//!   partitions, the unit of work distribution (Spark's `partitionBy`).
//! * [`stage::StageTimer`] — named-stage wall-clock accounting so experiments can report
//!   per-component times (baseliner / extender / generator / recommender, Figure 4).
//! * [`clock::Stopwatch`] — the one sanctioned ambient clock read; all wall-clock
//!   measurement funnels through it so the `ambient-nondeterminism` lint rule can ban
//!   `Instant::now` everywhere else.
//! * [`epoch::EpochHandle`] — an atomically swappable, epoch-counted snapshot handle:
//!   writers build the next model version aside and publish it with one pointer swing;
//!   readers take wait-free reference-counted snapshots and never observe a torn or
//!   retired epoch. This is the publication primitive behind serve-while-updating.
//! * [`concurrent::ConcurrentStage`] — a driver that interleaves a reader pool with an
//!   ingest worker over epoch-published state, recording both sides (latencies and
//!   data-derived task costs) in the dataflow's ledgers.
//! * [`cluster::ClusterSim`] — a deterministic cluster *simulator*: given the
//!   per-partition task costs recorded by a `Dataflow` stage (or any modelled task bag),
//!   it computes the makespan of an LPT (longest processing time first) schedule on `m`
//!   machines plus a configurable per-stage coordination/shuffle overhead, and from that
//!   the speedup curve of Figure 11. This is the faithful substitute for the physical
//!   cluster, which a single evaluation machine (possibly with a single core, as in CI)
//!   cannot reproduce with real threads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cluster;
pub mod concurrent;
pub mod dataflow;
pub mod epoch;
pub mod partition;
pub mod pool;
pub mod stage;
pub mod sync;

pub use clock::Stopwatch;
pub use cluster::{
    ClusterCostModel, ClusterSim, RoutedReport, RoutedTask, ShardedCluster, SpeedupPoint,
};
pub use concurrent::{
    ConcurrentIngest, ConcurrentRead, ConcurrentReport, ConcurrentStage, IngestRecord, ReadRecord,
    CONCURRENT_INGEST_STAGE, CONCURRENT_READ_STAGE,
};
pub use dataflow::{fn_stage, Dataflow, FnStage, Stage, StageContext};
pub use epoch::EpochHandle;
pub use partition::Partitioner;
pub use pool::WorkerPool;
pub use stage::{StageReport, StageTimer};
