//! The unified `Stage` / `Dataflow` execution substrate.
//!
//! The paper's implementation runs the four X-Map components as Spark jobs: each
//! component is a keyed transformation whose work is split into partitions, scheduled
//! onto executors, and timed by the driver. This module is the local equivalent, and the
//! single place where partitioning, parallel execution and accounting live:
//!
//! * a [`Stage`] is one named transformation (`baseliner`, `extender`, …);
//! * the [`Dataflow`] runner owns the [`WorkerPool`], the [`Partitioner`] and a
//!   [`StageTimer`]; [`Dataflow::run`] executes a stage, times it, and collects the
//!   stage's per-partition task costs;
//! * inside a stage, [`StageContext::map_partitions`] splits the input by key into the
//!   dataflow's partitions, processes every partition as one pool task (so per-partition
//!   scratch state is reused across the items of a partition), and records one
//!   *data-derived* cost per partition.
//!
//! Costs are work estimates computed from the data (e.g. candidate counts), **not**
//! wall-clock samples, so they are identical no matter how many workers execute the
//! stage. That is what lets the [`ClusterSim`](crate::cluster::ClusterSim) replay the
//! exact same task bag on a simulated cluster (Figure 11) while the real pool executes
//! it on local threads: both consume the same per-partition costs via
//! [`Dataflow::stage_costs`] / [`Dataflow::cluster_sim`].

use crate::cluster::{ClusterCostModel, ClusterSim};
use crate::partition::Partitioner;
use crate::pool::WorkerPool;
use crate::stage::{StageReport, StageTimer};
use std::hash::Hash;
use std::sync::Mutex;

/// One named transformation of the dataflow.
///
/// Stages are generic over their input `In` (typically a reference to the previous
/// stage's output) and declare their output as an associated type, so a pipeline is a
/// plain sequence of `dataflow.run(&stage, input)` calls with full type inference
/// between consecutive stages.
pub trait Stage<In> {
    /// The stage's output.
    type Out;

    /// Stable stage name used for timing reports and task-cost accounting.
    fn name(&self) -> &'static str;

    /// Executes the stage. Parallel work should go through the [`StageContext`].
    fn run(&self, input: In, cx: &mut StageContext<'_>) -> Self::Out;
}

/// A [`Stage`] built from a name and a closure, for ad-hoc stages in tests and
/// benches (library pipelines define named stage types instead).
pub struct FnStage<F> {
    name: &'static str,
    f: F,
}

/// Builds an ad-hoc stage from a name and a closure.
pub fn fn_stage<In, Out, F>(name: &'static str, f: F) -> FnStage<F>
where
    F: Fn(In, &mut StageContext<'_>) -> Out,
{
    FnStage { name, f }
}

impl<In, Out, F> Stage<In> for FnStage<F>
where
    F: Fn(In, &mut StageContext<'_>) -> Out,
{
    type Out = Out;

    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, input: In, cx: &mut StageContext<'_>) -> Out {
        (self.f)(input, cx)
    }
}

/// Execution handle passed to a running [`Stage`].
pub struct StageContext<'a> {
    pool: &'a WorkerPool,
    partitioner: Partitioner,
    costs: Vec<f64>,
}

impl StageContext<'_> {
    /// The worker pool executing this stage.
    pub fn pool(&self) -> &WorkerPool {
        self.pool
    }

    /// The dataflow's partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Records an explicit per-partition task cost (for stages that partition work
    /// themselves rather than through [`StageContext::map_partitions`]).
    pub fn record_task_cost(&mut self, cost: f64) {
        self.costs.push(cost);
    }

    /// Partitions `items` by `key`, processes every partition as one pool task, and
    /// returns the per-partition outputs in partition order.
    ///
    /// `f` receives the partition index and the partition's items, and returns the
    /// partition's output together with its *data-derived* task cost; the costs are
    /// recorded on the context (one per partition, in partition order) and surface
    /// through [`Dataflow::stage_costs`]. Because partition assignment depends only on
    /// the partitioner and the costs only on the data, both the outputs and the recorded
    /// costs are identical for any worker count.
    pub fn map_partitions<T, K, R, F>(
        &mut self,
        items: Vec<T>,
        key: impl Fn(&T) -> K,
        f: F,
    ) -> Vec<R>
    where
        T: Send + Sync,
        K: Hash,
        R: Send,
        F: Fn(usize, &[T]) -> (R, f64) + Sync,
    {
        let parts = self.partitioner.split_by_key(items, key);
        let outputs = self
            .pool
            .parallel_map_indexed(&parts, |ix, part| f(ix, part.as_slice()));
        let mut results = Vec::with_capacity(outputs.len());
        for (out, cost) in outputs {
            self.costs.push(cost);
            results.push(out);
        }
        results
    }

    /// Partitions `items` by their *input position*, processes every partition as one
    /// pool task, and returns one output per item **in the original input order**.
    ///
    /// This is the serving-side counterpart of [`StageContext::map_partitions`]: batch
    /// request processing wants per-request outputs back in request order, while still
    /// getting partition-level scratch reuse and per-partition task-cost accounting.
    /// `f` receives the partition index and the partition's `(input position, item)`
    /// pairs, and must return one output per pair (in slice order) together with the
    /// partition's data-derived task cost. Partition assignment hashes the input
    /// position, so outputs, partition contents and recorded costs are identical for any
    /// worker count.
    ///
    /// # Panics
    /// Panics if `f` returns a different number of outputs than it received items.
    pub fn map_items_ordered<T, R, F>(&mut self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(usize, &[(usize, T)]) -> (Vec<R>, f64) + Sync,
    {
        let n = items.len();
        let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        let per_partition = self.map_partitions(
            indexed,
            |&(pos, _)| pos,
            |ix, part| {
                let (outs, cost) = f(ix, part);
                assert_eq!(
                    outs.len(),
                    part.len(),
                    "partition {ix} returned {} outputs for {} items",
                    outs.len(),
                    part.len()
                );
                let keyed: Vec<(usize, R)> = part.iter().map(|&(pos, _)| pos).zip(outs).collect();
                (keyed, cost)
            },
        );
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (pos, out) in per_partition.into_iter().flatten() {
            slots[pos] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every input position produced exactly one output")) // lint: panic — reviewed invariant
            .collect()
    }
}

/// The dataflow runner: executes [`Stage`]s on a pool, times them, and accumulates
/// their per-partition task costs for the cluster simulator.
#[derive(Debug)]
pub struct Dataflow {
    pool: WorkerPool,
    partitioner: Partitioner,
    timer: StageTimer,
    stage_costs: Mutex<Vec<(String, Vec<f64>)>>,
}

impl Dataflow {
    /// Creates a runner with `workers` pool threads and `partitions` dataflow
    /// partitions. The two are independent: partitions fix the unit of work (and hence
    /// the recorded task costs), workers only decide how many execute concurrently.
    pub fn new(workers: usize, partitions: usize) -> Self {
        Dataflow {
            pool: WorkerPool::new(workers),
            partitioner: Partitioner::new(partitions),
            timer: StageTimer::new(),
            stage_costs: Mutex::new(Vec::new()),
        }
    }

    /// The pool stages execute on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The dataflow's partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Runs a stage: times it under its name and collects the per-partition task costs
    /// it recorded. Re-running a stage *replaces* its previous timing report and cost
    /// entry, so a long-lived runner that serves the same stage indefinitely keeps a
    /// bounded ledger (one entry per distinct stage name).
    pub fn run<In, S: Stage<In>>(&self, stage: &S, input: In) -> S::Out {
        let mut cx = StageContext {
            pool: &self.pool,
            partitioner: self.partitioner,
            costs: Vec::new(),
        };
        let out = self
            .timer
            .run_stage(stage.name(), || stage.run(input, &mut cx));
        self.replace_costs(stage.name(), cx.costs);
        out
    }

    /// Records a stage that executed *outside* [`Dataflow::run`] — e.g. the
    /// [`ConcurrentStage`](crate::concurrent::ConcurrentStage) driver, whose reader
    /// pool and ingest worker interleave on their own threads. The measured duration
    /// and per-task cost bag enter the timer and cost ledger with the same
    /// replace-latest semantics as [`Dataflow::run`], so external stages surface
    /// through [`Dataflow::reports`], [`Dataflow::stage_costs`] and
    /// [`Dataflow::cluster_sim`] exactly like pool-executed ones.
    pub fn record_external(&self, name: &str, duration: std::time::Duration, costs: Vec<f64>) {
        self.timer.record_latest(name, duration);
        self.replace_costs(name, costs);
    }

    /// Replace-latest ledger update shared by [`Dataflow::run`] and
    /// [`Dataflow::record_external`].
    fn replace_costs(&self, name: &str, costs: Vec<f64>) {
        let mut ledger = self
            .stage_costs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if costs.is_empty() {
            // Replacement semantics also cover the empty case: a re-run that recorded
            // nothing (a stage that skips its partitioned maps, or one recording costs
            // itself via `record_task_cost`) must not leave a stale task bag behind for
            // the cluster simulator to replay.
            ledger.retain(|(entry, _)| entry != name);
        } else {
            match ledger.iter_mut().find(|(entry, _)| entry == name) {
                Some(entry) => entry.1 = costs,
                None => ledger.push((name.to_string(), costs)),
            }
        }
    }

    /// Wall-clock reports of the most recent run of each stage, in first-execution
    /// order.
    pub fn reports(&self) -> Vec<StageReport> {
        self.timer.reports()
    }

    /// The per-partition task costs recorded by the most recent run of the named stage.
    pub fn stage_costs(&self, stage: &str) -> Option<Vec<f64>> {
        self.stage_costs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, costs)| costs.clone())
    }

    /// Builds a cluster simulator over the named stage's task bag — the simulated
    /// cluster replays exactly the work units the real pool executed.
    pub fn cluster_sim(&self, stage: &str, model: ClusterCostModel) -> Option<ClusterSim> {
        self.stage_costs(stage)
            .map(|costs| ClusterSim::new(costs, model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquareStage;

    impl Stage<Vec<u64>> for SquareStage {
        type Out = Vec<u64>;

        fn name(&self) -> &'static str {
            "square"
        }

        fn run(&self, input: Vec<u64>, cx: &mut StageContext<'_>) -> Vec<u64> {
            let per_partition = cx.map_partitions(
                input,
                |x| *x,
                |_ix, part| {
                    let out: Vec<u64> = part.iter().map(|x| x * x).collect();
                    let cost = part.len() as f64;
                    (out, cost)
                },
            );
            per_partition.into_iter().flatten().collect()
        }
    }

    #[test]
    fn stage_outputs_and_costs_are_recorded() {
        let flow = Dataflow::new(4, 8);
        let out = flow.run(&SquareStage, (0..100).collect());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        let mut expect: Vec<u64> = (0..100u64).map(|x| x * x).collect();
        expect.sort_unstable();
        assert_eq!(sorted, expect);

        let costs = flow.stage_costs("square").expect("costs recorded");
        assert_eq!(costs.len(), 8, "one task cost per partition");
        assert_eq!(costs.iter().sum::<f64>(), 100.0, "costs cover every item");
        assert_eq!(flow.reports().len(), 1);
        assert_eq!(flow.reports()[0].name, "square");
    }

    #[test]
    fn cluster_sim_consumes_stage_costs() {
        let flow = Dataflow::new(2, 16);
        let _ = flow.run(&SquareStage, (0..500).collect());
        let sim = flow
            .cluster_sim("square", ClusterCostModel::xmap_like())
            .expect("stage ran");
        assert_eq!(sim.n_tasks(), 16);
        assert!((sim.total_work() - 500.0).abs() < 1e-9);
        assert!(sim.speedup(10, 5) >= 1.0);
    }

    #[test]
    fn rerunning_a_stage_replaces_its_ledger_entries_instead_of_growing_them() {
        let flow = Dataflow::new(2, 4);
        for round in 0..50u64 {
            let _ = flow.run(&SquareStage, (0..10 + round).collect());
        }
        assert_eq!(
            flow.reports().len(),
            1,
            "repeated runs must keep one report per stage name"
        );
        let costs = flow.stage_costs("square").unwrap();
        assert_eq!(costs.len(), 4);
        assert_eq!(
            costs.iter().sum::<f64>(),
            59.0,
            "the ledger must hold the most recent run's costs"
        );
    }

    #[test]
    fn rerun_that_records_nothing_clears_the_stale_ledger_entry() {
        let flow = Dataflow::new(2, 4);
        let record = fn_stage(
            "sweep-point",
            |items: Vec<u64>, cx: &mut StageContext<'_>| {
                for _ in &items {
                    cx.record_task_cost(1.0);
                }
                items.len()
            },
        );
        assert_eq!(flow.run(&record, vec![1, 2, 3]), 3);
        assert_eq!(flow.stage_costs("sweep-point").unwrap().len(), 3);
        // a later run of the same stage name with no recorded costs must not leave the
        // old task bag in place
        assert_eq!(flow.run(&record, Vec::new()), 0);
        assert!(
            flow.stage_costs("sweep-point").is_none(),
            "stale costs survived an empty re-run"
        );
    }

    #[test]
    fn unknown_stage_has_no_costs() {
        let flow = Dataflow::new(1, 4);
        assert!(flow.stage_costs("nope").is_none());
        assert!(flow
            .cluster_sim("nope", ClusterCostModel::xmap_like())
            .is_none());
    }

    struct OrderedDoubleStage;

    impl Stage<Vec<u64>> for OrderedDoubleStage {
        type Out = Vec<u64>;

        fn name(&self) -> &'static str {
            "double"
        }

        fn run(&self, input: Vec<u64>, cx: &mut StageContext<'_>) -> Vec<u64> {
            cx.map_items_ordered(input, |_ix, part| {
                let outs: Vec<u64> = part.iter().map(|&(_, x)| x * 2).collect();
                (outs, part.len() as f64)
            })
        }
    }

    #[test]
    fn ordered_map_returns_outputs_in_input_order() {
        let flow = Dataflow::new(4, 8);
        let input: Vec<u64> = (0..100).rev().collect();
        let out = flow.run(&OrderedDoubleStage, input.clone());
        let expect: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect, "outputs must align with the input order");
        let costs = flow.stage_costs("double").expect("costs recorded");
        assert_eq!(costs.len(), 8, "one task cost per partition");
        assert_eq!(costs.iter().sum::<f64>(), 100.0);
    }

    #[test]
    fn ordered_map_is_identical_for_1_2_and_8_workers() {
        let reference_flow = Dataflow::new(1, 8);
        let reference = reference_flow.run(&OrderedDoubleStage, (0..500).collect());
        let reference_costs = reference_flow.stage_costs("double").unwrap();
        for workers in [2usize, 8] {
            let flow = Dataflow::new(workers, 8);
            let out = flow.run(&OrderedDoubleStage, (0..500).collect());
            assert_eq!(out, reference, "{workers} workers changed ordered output");
            assert_eq!(
                flow.stage_costs("double").unwrap(),
                reference_costs,
                "{workers} workers changed ordered task costs"
            );
        }
    }

    #[test]
    fn ordered_map_handles_empty_input() {
        let flow = Dataflow::new(2, 4);
        let out = flow.run(&OrderedDoubleStage, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn results_and_costs_are_identical_for_1_2_and_8_workers() {
        // The Dataflow determinism contract: partition assignment and task costs depend
        // only on the partitioner, never on the worker count executing the partitions.
        let reference_flow = Dataflow::new(1, 8);
        let reference = reference_flow.run(&SquareStage, (0..1000).collect());
        let reference_costs = reference_flow.stage_costs("square").unwrap();
        for workers in [2usize, 8] {
            let flow = Dataflow::new(workers, 8);
            let out = flow.run(&SquareStage, (0..1000).collect());
            assert_eq!(out, reference, "{workers} workers changed stage output");
            assert_eq!(
                flow.stage_costs("square").unwrap(),
                reference_costs,
                "{workers} workers changed task costs"
            );
        }
    }
}
