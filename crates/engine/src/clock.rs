//! The workspace's single sanctioned ambient clock read.
//!
//! Bit-identity contracts (serve == serial reference, delta == refit, recovery
//! == in-memory) require every computed value to be a function of explicit
//! inputs, so the `ambient-nondeterminism` lint rule bans `Instant::now` in
//! library code. Wall-clock *measurement* is still wanted — stage ledgers,
//! latency records, throughput benches — and it is harmless exactly as long
//! as durations only ever flow into reports, never into model state.
//!
//! [`Stopwatch`] is that funnel: the one place (`clock_allowlist` in the lint
//! config) allowed to touch `std::time::Instant`. Everything else measures
//! through it, which keeps the "timing never feeds data" discipline greppable
//! and machine-checkable.

use std::time::{Duration, Instant};

/// A started wall-clock measurement. Durations read from it must only be
/// recorded (ledgers, reports, latency histograms) — never branched on to
/// produce model-visible values.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a measurement now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Wall-clock time since the last `lap` (or since start), restarting the
    /// measurement — for timing consecutive phases with one watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now.duration_since(self.start);
        self.start = now;
        lap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let watch = Stopwatch::start();
        let a = watch.elapsed();
        let b = watch.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_restarts_the_measurement() {
        let mut watch = Stopwatch::start();
        std::thread::sleep(Duration::from_micros(50));
        let first = watch.lap();
        let second = watch.elapsed();
        assert!(first >= Duration::from_micros(50));
        assert!(second <= first, "lap must restart the watch");
    }
}
