//! Named-stage wall-clock accounting.
//!
//! The X-Map implementation is a four-stage pipeline (baseliner → extender → generator →
//! recommender, Figure 4). [`StageTimer`] records how long each named stage took so
//! experiments can report per-component costs and the cluster simulator can be fed with
//! realistic stage weights.

use std::sync::Mutex;
use std::time::Duration;

use crate::clock::Stopwatch;

/// One recorded stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Collects named stage durations. Thread-safe so parallel stages can record themselves.
#[derive(Debug, Default)]
pub struct StageTimer {
    reports: Mutex<Vec<StageReport>>,
}

impl StageTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` as a named stage, recording its duration, and returns its result.
    ///
    /// Re-running a stage *replaces* its previous report (see
    /// [`StageTimer::record_latest`]), so a long-lived runner re-executing the same
    /// stage indefinitely keeps one report per distinct stage name. Use
    /// [`StageTimer::record`] directly when append semantics are wanted.
    pub fn run_stage<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let watch = Stopwatch::start();
        let result = f();
        self.record_latest(name, watch.elapsed());
        result
    }

    /// Records an externally measured duration for a named stage.
    pub fn record(&self, name: &str, duration: Duration) {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(StageReport {
                name: name.to_string(),
                duration,
            });
    }

    /// Records a duration for a named stage, *replacing* the most recent entry with the
    /// same name (appending if none exists). Long-running processes that re-run the
    /// same stage indefinitely (batched serving) stay bounded: one report per distinct
    /// stage name, in first-execution order.
    pub fn record_latest(&self, name: &str, duration: Duration) {
        let mut reports = self
            .reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(r) = reports.iter_mut().rev().find(|r| r.name == name) {
            r.duration = duration;
        } else {
            reports.push(StageReport {
                name: name.to_string(),
                duration,
            });
        }
    }

    /// All recorded stages in recording order.
    pub fn reports(&self) -> Vec<StageReport> {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Total duration across all recorded stages.
    pub fn total(&self) -> Duration {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|r| r.duration)
            .sum()
    }

    /// The duration of the most recent stage with the given name, if any.
    pub fn last(&self, name: &str) -> Option<Duration> {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .rev()
            .find(|r| r.name == name)
            .map(|r| r.duration)
    }

    /// Clears all recorded stages.
    pub fn reset(&self) {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stage_records_and_returns() {
        let timer = StageTimer::new();
        let value = timer.run_stage("baseliner", || 21 * 2);
        assert_eq!(value, 42);
        let reports = timer.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "baseliner");
    }

    #[test]
    fn record_and_query_by_name() {
        let timer = StageTimer::new();
        timer.record("extender", Duration::from_millis(5));
        timer.record("generator", Duration::from_millis(7));
        timer.record("extender", Duration::from_millis(9));
        assert_eq!(timer.last("extender"), Some(Duration::from_millis(9)));
        assert_eq!(timer.last("generator"), Some(Duration::from_millis(7)));
        assert_eq!(timer.last("missing"), None);
        assert_eq!(timer.total(), Duration::from_millis(21));
    }

    #[test]
    fn record_latest_replaces_in_place() {
        let timer = StageTimer::new();
        timer.record_latest("recommend", Duration::from_millis(5));
        timer.record_latest("other", Duration::from_millis(1));
        timer.record_latest("recommend", Duration::from_millis(9));
        let reports = timer.reports();
        assert_eq!(reports.len(), 2, "re-recording must not grow the list");
        assert_eq!(reports[0].name, "recommend");
        assert_eq!(reports[0].duration, Duration::from_millis(9));
        assert_eq!(reports[1].name, "other");
    }

    #[test]
    fn reset_clears_reports() {
        let timer = StageTimer::new();
        timer.record("a", Duration::from_millis(1));
        timer.reset();
        assert!(timer.reports().is_empty());
        assert_eq!(timer.total(), Duration::ZERO);
    }

    #[test]
    fn stages_are_recorded_in_order() {
        let timer = StageTimer::new();
        for name in ["baseliner", "extender", "generator", "recommender"] {
            timer.run_stage(name, || std::thread::sleep(Duration::from_micros(10)));
        }
        let names: Vec<String> = timer.reports().into_iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["baseliner", "extender", "generator", "recommender"]
        );
        assert!(timer.total() >= Duration::from_micros(40));
    }
}
