//! Serve-while-updating driver: a reader pool interleaved with an ingest worker.
//!
//! [`ConcurrentStage`] executes two workloads against the same epoch-published state
//! (see [`crate::epoch::EpochHandle`]) at once: a pool of reader threads drains a
//! query list while the calling thread applies a sequence of updates, each of which
//! publishes a new epoch. The driver is generic — it knows nothing about models; the
//! caller supplies a `read` closure (returning the observed epoch, the output and a
//! data-derived task cost) and an `ingest` closure (returning the published epoch and
//! its task cost).
//!
//! Two properties make the result checkable after the fact:
//!
//! * every read records the **epoch it observed**, so a verifier can replay the same
//!   query against a serialized schedule paused at that epoch boundary and demand
//!   bit-equality;
//! * outputs come back in query order and the recorded cost bags depend only on the
//!   data (query order for reads, update order for ingests), never on the interleave,
//!   so the ledgers stay deterministic even though the schedule is not.
//!
//! Both sides are recorded in the dataflow's ledgers under
//! [`CONCURRENT_READ_STAGE`] and [`CONCURRENT_INGEST_STAGE`] via
//! [`Dataflow::record_external`], with the usual replace-latest semantics.

use crate::clock::Stopwatch;
use crate::dataflow::Dataflow;
use crate::pool::SendPtr;
use crate::sync::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Ledger/timer name for the reader side of a [`ConcurrentStage`] run.
pub const CONCURRENT_READ_STAGE: &str = "concurrent-read";
/// Ledger/timer name for the ingest side of a [`ConcurrentStage`] run.
pub const CONCURRENT_INGEST_STAGE: &str = "concurrent-ingest";

/// One read's result, as produced by the caller's `read` closure.
pub struct ConcurrentRead<R> {
    /// The epoch the read observed (from [`crate::epoch::EpochHandle::load`]).
    pub epoch: u64,
    /// The read's output.
    pub output: R,
    /// Data-derived task cost of the read (e.g. profile length).
    pub cost: f64,
}

/// One ingested update's result, as produced by the caller's `ingest` closure.
pub struct ConcurrentIngest {
    /// The epoch the update published.
    pub epoch: u64,
    /// Data-derived task cost of the update.
    pub cost: f64,
}

/// Per-read record kept in the [`ConcurrentReport`].
#[derive(Clone, Debug)]
pub struct ReadRecord {
    /// The query's position in the input list.
    pub index: usize,
    /// The epoch the read observed.
    pub epoch: u64,
    /// Wall-clock latency of this read.
    pub latency: Duration,
}

/// Per-update record kept in the [`ConcurrentReport`].
#[derive(Clone, Debug)]
pub struct IngestRecord {
    /// The update's position in the update sequence.
    pub index: usize,
    /// The epoch this update published.
    pub epoch: u64,
    /// Wall-clock latency of applying (and publishing) this update.
    pub latency: Duration,
}

/// What a [`ConcurrentStage`] run observed: one record per read (in query order) and
/// one per ingested update (in update order).
#[derive(Clone, Debug, Default)]
pub struct ConcurrentReport {
    /// Per-read records, in query order.
    pub reads: Vec<ReadRecord>,
    /// Per-update records, in update order.
    pub ingests: Vec<IngestRecord>,
}

impl ConcurrentReport {
    /// The `p`-th percentile (0.0–1.0) of read latencies, by the nearest-rank method.
    /// Returns `Duration::ZERO` when no reads were recorded.
    pub fn read_latency_percentile(&self, p: f64) -> Duration {
        let mut latencies: Vec<Duration> = self.reads.iter().map(|r| r.latency).collect();
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        latencies.sort_unstable();
        let rank = ((p.clamp(0.0, 1.0) * latencies.len() as f64).ceil() as usize)
            .clamp(1, latencies.len());
        latencies[rank - 1]
    }

    /// The p99 of read latencies (see [`ConcurrentReport::read_latency_percentile`]).
    pub fn read_p99(&self) -> Duration {
        self.read_latency_percentile(0.99)
    }

    /// The set of distinct epochs observed by reads, ascending.
    pub fn observed_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = self.reads.iter().map(|r| r.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }
}

/// The serve-while-updating driver. See the [module docs](self).
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentStage {
    readers: usize,
}

impl ConcurrentStage {
    /// Creates a driver with the given number of reader threads (at least 1). The
    /// ingest worker always runs on the calling thread, concurrent with the readers.
    pub fn new(readers: usize) -> Self {
        ConcurrentStage {
            readers: readers.max(1),
        }
    }

    /// The number of reader threads.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Runs the interleave: reader threads drain `queries` (claiming indices from a
    /// shared cursor) while the calling thread applies updates `0..n_updates` in
    /// order. Returns the read outputs **in query order** plus the observation
    /// report, and records both sides in `flow`'s ledgers under
    /// [`CONCURRENT_READ_STAGE`] / [`CONCURRENT_INGEST_STAGE`].
    ///
    /// `read` must be safe to call concurrently with `ingest` — that is the whole
    /// point; the epoch handle provides the required publication discipline.
    pub fn run<Q, R, F, G>(
        &self,
        flow: &Dataflow,
        queries: &[Q],
        read: F,
        n_updates: usize,
        mut ingest: G,
    ) -> (Vec<R>, ConcurrentReport)
    where
        Q: Sync,
        R: Send,
        F: Fn(usize, &Q) -> ConcurrentRead<R> + Sync,
        G: FnMut(usize) -> ConcurrentIngest,
    {
        let n = queries.len();
        let cursor = AtomicUsize::new(0);
        let mut outputs: Vec<Option<R>> = Vec::with_capacity(n);
        outputs.resize_with(n, || None);
        let outputs_ptr = SendPtr(outputs.as_mut_ptr());
        let mut records: Vec<Option<ReadRecord>> = Vec::with_capacity(n);
        records.resize_with(n, || None);
        let records_ptr = SendPtr(records.as_mut_ptr());
        let mut costs: Vec<f64> = vec![0.0; n];
        let costs_ptr = SendPtr(costs.as_mut_ptr());

        let start = Stopwatch::start();
        let read_elapsed = Mutex::new(Duration::ZERO);
        let mut ingests = Vec::with_capacity(n_updates);
        let mut ingest_costs = Vec::with_capacity(n_updates);
        let mut ingest_elapsed = Duration::ZERO;

        std::thread::scope(|scope| {
            for _ in 0..self.readers.min(n.max(1)) {
                let cursor = &cursor;
                let read = &read;
                let read_elapsed = &read_elapsed;
                scope.spawn(move || {
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let begin = Stopwatch::start();
                        let result = read(idx, &queries[idx]);
                        let latency = begin.elapsed();
                        // SAFETY: each index is claimed by exactly one reader
                        // (fetch_add is unique per idx), all three vectors were
                        // pre-sized to n, and the scope joins readers before the
                        // vectors are consumed.
                        unsafe {
                            *outputs_ptr.slot(idx) = Some(result.output);
                            *records_ptr.slot(idx) = Some(ReadRecord {
                                index: idx,
                                epoch: result.epoch,
                                latency,
                            });
                            *costs_ptr.slot(idx) = result.cost;
                        }
                    }
                    let elapsed = start.elapsed();
                    let mut max = read_elapsed
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if elapsed > *max {
                        *max = elapsed;
                    }
                });
            }

            // The ingest worker: the calling thread, concurrent with the readers.
            let ingest_start = Stopwatch::start();
            for update_ix in 0..n_updates {
                let begin = Stopwatch::start();
                let applied = ingest(update_ix);
                ingests.push(IngestRecord {
                    index: update_ix,
                    epoch: applied.epoch,
                    latency: begin.elapsed(),
                });
                ingest_costs.push(applied.cost);
            }
            ingest_elapsed = ingest_start.elapsed();
        });

        let read_duration = *read_elapsed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        flow.record_external(CONCURRENT_READ_STAGE, read_duration, costs);
        flow.record_external(CONCURRENT_INGEST_STAGE, ingest_elapsed, ingest_costs);

        let report = ConcurrentReport {
            reads: records
                .into_iter()
                .map(|r| r.expect("every query index produced a record")) // lint: panic — reviewed invariant
                .collect(),
            ingests,
        };
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every query index produced an output")) // lint: panic — reviewed invariant
            .collect();
        (outputs, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochHandle;
    use std::sync::Arc;

    fn run_counter_interleave(readers: usize, queries: usize, updates: usize) {
        let flow = Dataflow::new(readers, 8);
        let handle = EpochHandle::new(Arc::new(0u64), 0);
        let query_ids: Vec<usize> = (0..queries).collect();
        let stage = ConcurrentStage::new(readers);
        let (outputs, report) = stage.run(
            &flow,
            &query_ids,
            |_ix, &q| {
                let (epoch, value) = handle.load();
                ConcurrentRead {
                    epoch,
                    output: (q, epoch, *value),
                    cost: 1.0 + q as f64,
                }
            },
            updates,
            |ix| {
                let epoch = handle.publish(Arc::new(ix as u64 + 1));
                ConcurrentIngest { epoch, cost: 2.0 }
            },
        );

        assert_eq!(outputs.len(), queries);
        for (ix, &(q, epoch, value)) in outputs.iter().enumerate() {
            assert_eq!(q, ix, "outputs must come back in query order");
            assert_eq!(epoch, value, "read observed a torn epoch/value pair");
        }
        assert_eq!(report.reads.len(), queries);
        assert_eq!(report.ingests.len(), updates);
        for (ix, ingest) in report.ingests.iter().enumerate() {
            assert_eq!(ingest.epoch, ix as u64 + 1, "publishes must be in order");
        }
        // Cost bags are data-derived and deterministic regardless of interleave.
        let read_costs = flow.stage_costs(CONCURRENT_READ_STAGE).unwrap();
        let expect: Vec<f64> = (0..queries).map(|q| 1.0 + q as f64).collect();
        assert_eq!(read_costs, expect);
        if updates == 0 {
            // An empty cost bag must not leave (or create) a ledger entry.
            assert!(flow.stage_costs(CONCURRENT_INGEST_STAGE).is_none());
        } else {
            let ingest_costs = flow.stage_costs(CONCURRENT_INGEST_STAGE).unwrap();
            assert_eq!(ingest_costs, vec![2.0; updates]);
        }
        assert!(flow
            .reports()
            .iter()
            .any(|r| r.name == CONCURRENT_READ_STAGE));
        assert!(flow
            .reports()
            .iter()
            .any(|r| r.name == CONCURRENT_INGEST_STAGE));
    }

    #[test]
    fn interleave_is_consistent_at_1_2_and_8_readers() {
        for readers in [1usize, 2, 8] {
            run_counter_interleave(readers, 200, 10);
        }
    }

    #[test]
    fn no_updates_still_drains_all_queries() {
        run_counter_interleave(2, 50, 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut report = ConcurrentReport::default();
        for ms in 1..=100u64 {
            report.reads.push(ReadRecord {
                index: ms as usize - 1,
                epoch: 0,
                latency: Duration::from_millis(ms),
            });
        }
        assert_eq!(report.read_p99(), Duration::from_millis(99));
        assert_eq!(
            report.read_latency_percentile(0.5),
            Duration::from_millis(50)
        );
        assert_eq!(
            report.read_latency_percentile(1.0),
            Duration::from_millis(100)
        );
        assert_eq!(ConcurrentReport::default().read_p99(), Duration::ZERO);
    }

    #[test]
    fn observed_epochs_are_sorted_and_deduped() {
        let mut report = ConcurrentReport::default();
        for &e in &[3u64, 1, 3, 2, 1] {
            report.reads.push(ReadRecord {
                index: 0,
                epoch: e,
                latency: Duration::ZERO,
            });
        }
        assert_eq!(report.observed_epochs(), vec![1, 2, 3]);
    }
}
