//! A small work-stealing worker pool for embarrassingly parallel map stages.
//!
//! Every computationally heavy phase of X-Map (baseline similarity computation, layer
//! extension, AlterEgo generation, per-user recommendation) is a pure function applied
//! independently to each element of a collection. [`WorkerPool::parallel_map`] runs such
//! a function across `workers` scoped threads (`std::thread::scope`) that pull indices
//! from a shared atomic counter — the simplest form of dynamic load balancing, adequate
//! because individual tasks are small and numerous.

use crate::sync::{AtomicUsize, Ordering};

/// A fixed-size worker pool. The pool owns no threads between calls; threads are scoped
/// to each `parallel_map` invocation, so the pool is trivially `Send + Sync` and cheap to
/// create.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool with the given number of workers (at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn default_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkerPool::new(workers)
    }

    /// The number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every element of `items` and returns the results in input order.
    ///
    /// With a single worker the map runs inline on the calling thread (no thread spawn
    /// overhead), which also makes single-core CI environments behave deterministically.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.parallel_map_indexed(items, |_, item| f(item))
    }

    /// Like [`WorkerPool::parallel_map`] but also passes the element index to `f`.
    pub fn parallel_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.workers == 1 || items.len() == 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let n = items.len();
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let results_ptr = SendPtr(results.as_mut_ptr());

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || loop {
                    // Pure index dispenser: fetch_add uniqueness is all that is
                    // needed; no data is published through the cursor.
                    // lint: ordering
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let value = f(idx, &items[idx]);
                    // SAFETY: each index is claimed by exactly one worker (fetch_add is
                    // unique per idx), the vector was pre-sized to n elements, and the
                    // scope guarantees workers finish before `results` is read.
                    unsafe {
                        *results_ptr.slot(idx) = Some(value);
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("every index was processed")) // lint: panic — reviewed invariant
            .collect()
    }

    /// Splits `total` work items into per-worker contiguous ranges of near-equal size.
    /// Useful when the caller wants chunked rather than element-wise scheduling.
    pub fn chunk_ranges(&self, total: usize) -> Vec<std::ops::Range<usize>> {
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(total);
        let base = total / workers;
        let extra = total % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::default_parallelism()
    }
}

/// A raw pointer wrapper that is `Send`/`Copy` so scoped workers can write disjoint slots.
/// Accessing the pointer goes through [`SendPtr::slot`] so closures capture the whole
/// wrapper (and its `Send` impl) rather than the raw pointer field.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to the `idx`-th slot.
    ///
    /// # Safety
    /// The caller must ensure `idx` is in bounds of the allocation and that no other
    /// thread accesses the same slot concurrently.
    pub(crate) unsafe fn slot(self, idx: usize) -> *mut T {
        self.0.add(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_preserves_order_and_values() {
        let pool = WorkerPool::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let out = pool.parallel_map(&input, |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_passes_correct_indices() {
        let pool = WorkerPool::new(3);
        let input = vec!["a", "b", "c", "d"];
        let out = pool.parallel_map_indexed(&input, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let pool = WorkerPool::new(8);
        let out: Vec<u32> = pool.parallel_map(&Vec::<u32>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let out = pool.parallel_map(&[1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn default_pool_has_at_least_one_worker() {
        assert!(WorkerPool::default().workers() >= 1);
        assert!(WorkerPool::default_parallelism().workers() >= 1);
    }

    #[test]
    fn results_match_sequential_for_expensive_closure() {
        let pool = WorkerPool::new(4);
        let input: Vec<u64> = (0..200).collect();
        let expensive = |x: &u64| -> u64 {
            // small busy work so threads interleave
            (0..100).fold(*x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let parallel = pool.parallel_map(&input, expensive);
        let sequential: Vec<u64> = input.iter().map(expensive).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn chunk_ranges_cover_everything_without_overlap() {
        let pool = WorkerPool::new(4);
        let ranges = pool.chunk_ranges(10);
        assert_eq!(ranges.len(), 4);
        let mut covered = vec![false; 10];
        for r in &ranges {
            for i in r.clone() {
                assert!(!covered[i], "index {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
        assert!(pool.chunk_ranges(0).is_empty());
        // more workers than items: one range per item
        assert_eq!(WorkerPool::new(16).chunk_ranges(3).len(), 3);
    }

    proptest! {
        /// Parallel map equals sequential map for arbitrary inputs and worker counts.
        #[test]
        fn equivalent_to_sequential(input in proptest::collection::vec(0i64..1000, 0..300), workers in 1usize..8) {
            let pool = WorkerPool::new(workers);
            let parallel = pool.parallel_map(&input, |x| x * x - 3);
            let sequential: Vec<i64> = input.iter().map(|x| x * x - 3).collect();
            prop_assert_eq!(parallel, sequential);
        }

        /// Chunk ranges always partition [0, total).
        #[test]
        fn chunks_partition(total in 0usize..500, workers in 1usize..10) {
            let ranges = WorkerPool::new(workers).chunk_ranges(total);
            let count: usize = ranges.iter().map(|r| r.len()).sum();
            prop_assert_eq!(count, total);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
