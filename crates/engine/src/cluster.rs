//! Deterministic cluster simulator for the scalability experiment (Figure 11).
//!
//! The paper measures the speedup of X-Map (and of Spark MLlib-ALS) when the same job
//! runs on 4–20 machines, normalised to the 5-machine time. A single evaluation host
//! cannot reproduce a 20-machine cluster with real threads, so — per the substitution
//! rule in `DESIGN.md` — this module *simulates* distributed execution:
//!
//! * the job is described as a bag of independent task costs (e.g. per-partition
//!   similarity-computation times, measured locally or modelled from partition sizes);
//! * on `m` machines the tasks are scheduled greedily, longest first (LPT), onto the
//!   machine with the least load — the same load-balancing behaviour a Spark scheduler
//!   approximates;
//! * the simulated makespan adds a per-stage coordination/shuffle cost that grows with
//!   the machine count and with the fraction of data that must cross machines, plus a
//!   serial (non-parallelisable) fraction — this is what bends the curve away from the
//!   ideal linear speedup, for ALS (iterative, shuffle-heavy) much more than for X-Map
//!   (embarrassingly parallel per-item/per-user work).

use serde::{Deserialize, Serialize};

/// Cost model of one distributed job.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterCostModel {
    /// Work that cannot be parallelised (driver-side aggregation, job setup), in the same
    /// unit as the task costs.
    pub serial_cost: f64,
    /// Coordination overhead added *per machine* participating in a stage (heartbeats,
    /// task scheduling, result collection).
    pub per_machine_overhead: f64,
    /// Shuffle cost coefficient: each stage pays `shuffle_cost * total_work * (m-1)/m`,
    /// modelling the fraction of records that must leave their machine in an all-to-all
    /// exchange over `m` machines.
    pub shuffle_cost: f64,
    /// Number of shuffle stages the job performs.
    pub shuffle_stages: usize,
}

impl ClusterCostModel {
    /// A cost model resembling X-Map's pipeline: almost no serial work and a single
    /// cheap shuffle (exchanging the pruned top-k lists between layers).
    pub fn xmap_like() -> Self {
        ClusterCostModel {
            serial_cost: 0.01,
            per_machine_overhead: 0.002,
            shuffle_cost: 0.01,
            shuffle_stages: 2,
        }
    }

    /// A cost model resembling iterative ALS: a noticeable serial driver portion and many
    /// shuffle-heavy iterations (factor broadcast + gradient aggregation per sweep).
    pub fn als_like() -> Self {
        ClusterCostModel {
            serial_cost: 0.05,
            per_machine_overhead: 0.004,
            shuffle_cost: 0.035,
            shuffle_stages: 10,
        }
    }
}

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Number of machines.
    pub machines: usize,
    /// Simulated makespan on that many machines.
    pub makespan: f64,
    /// Speedup relative to the baseline machine count.
    pub speedup: f64,
}

/// The cluster simulator: task costs plus a cost model.
#[derive(Clone, Debug)]
pub struct ClusterSim {
    task_costs: Vec<f64>,
    model: ClusterCostModel,
}

impl ClusterSim {
    /// Creates a simulator for a job consisting of `task_costs` independent tasks.
    /// Non-finite or negative costs are rejected.
    pub fn new(task_costs: Vec<f64>, model: ClusterCostModel) -> Self {
        assert!(
            task_costs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "task costs must be finite and non-negative"
        );
        ClusterSim { task_costs, model }
    }

    /// Total amount of parallelisable work.
    pub fn total_work(&self) -> f64 {
        self.task_costs.iter().sum()
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.task_costs.len()
    }

    /// Simulated makespan of the job on `machines` machines.
    ///
    /// LPT scheduling: tasks are sorted by decreasing cost and each task is placed on the
    /// currently least-loaded machine. The result is the most loaded machine's finish
    /// time, plus the modelled serial, per-machine and shuffle costs.
    pub fn makespan(&self, machines: usize) -> f64 {
        let machines = machines.max(1);
        let mut sorted = self.task_costs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let mut loads = vec![0.0f64; machines];
        for cost in sorted {
            // place on the least-loaded machine
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one machine"); // lint: panic — reviewed invariant
            loads[idx] += cost;
        }
        let parallel_part = loads.iter().cloned().fold(0.0, f64::max);
        let m = machines as f64;
        // The shuffle term models the fraction of records that must leave their machine
        // in an all-to-all exchange: (m-1)/m of the data per stage. The aggregate network
        // does not speed up as machines are added, so this term grows (slowly) with m —
        // which is what bends shuffle-heavy jobs (ALS) away from linear speedup.
        let shuffle = self.model.shuffle_cost
            * self.total_work()
            * ((m - 1.0) / m)
            * self.model.shuffle_stages as f64;
        let overhead = self.model.per_machine_overhead * m;
        self.model.serial_cost + parallel_part + shuffle + overhead
    }

    /// Speedup of `machines` machines relative to `baseline_machines`
    /// (`S_p = T_baseline / T_p`, the normalisation used in §6.6 where the baseline is 5
    /// machines instead of a sequential run).
    pub fn speedup(&self, machines: usize, baseline_machines: usize) -> f64 {
        self.makespan(baseline_machines) / self.makespan(machines)
    }

    /// The full speedup curve for a list of machine counts.
    pub fn speedup_curve(
        &self,
        machine_counts: &[usize],
        baseline_machines: usize,
    ) -> Vec<SpeedupPoint> {
        machine_counts
            .iter()
            .map(|&m| SpeedupPoint {
                machines: m,
                makespan: self.makespan(m),
                speedup: self.speedup(m, baseline_machines),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Routed execution: nodes that own shards and run the tasks sent to them
// ---------------------------------------------------------------------------

/// One task of a routed trace: the node that executed it and its data-derived cost.
///
/// Unlike the anonymous task bags [`ClusterSim`] schedules with LPT, a routed task is
/// *pinned*: the router already decided which node runs it (the shard owner or a
/// replica), so the replay must respect that placement instead of re-balancing it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutedTask {
    /// The node the router sent the task to.
    pub node: usize,
    /// Data-derived cost of the task, in the same unit as [`ClusterSim`] task costs.
    pub cost: f64,
}

/// Aggregated outcome of replaying a routed ledger on a sharded cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedReport {
    /// Total busy time per node, indexed by node id.
    pub node_loads: Vec<f64>,
    /// Simulated completion time: the busiest node plus the modelled serial,
    /// per-node and shuffle costs.
    pub makespan: f64,
    /// Number of tasks replayed.
    pub n_tasks: usize,
    /// Sum of all task costs.
    pub total_work: f64,
}

impl RoutedReport {
    /// Load imbalance: busiest node over mean node load (1.0 = perfectly balanced).
    /// Zero total work reports 1.0.
    pub fn imbalance(&self) -> f64 {
        if self.node_loads.is_empty() || self.total_work <= 0.0 {
            return 1.0;
        }
        let max = self.node_loads.iter().cloned().fold(0.0, f64::max);
        let mean = self.total_work / self.node_loads.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A cluster whose nodes hold model shards and execute routed requests.
///
/// Where [`ClusterSim`] answers "how fast could this bag of tasks run if a scheduler
/// placed them perfectly?", `ShardedCluster` answers "how fast did the *routed* trace
/// run given where the shards actually live?" — placement is the router's, so skewed
/// shard maps show up as load imbalance instead of being silently re-balanced.
#[derive(Clone, Debug)]
pub struct ShardedCluster {
    /// `assignment[node]` = shard ids hosted by that node (primaries and replicas).
    assignment: Vec<Vec<u64>>,
    model: ClusterCostModel,
}

impl ShardedCluster {
    /// Creates a cluster from its node → hosted-shards assignment. Every node may
    /// host any number of shards (replicas repeat a shard id on several nodes); an
    /// empty node is allowed (it simply never receives routed work).
    pub fn new(assignment: Vec<Vec<u64>>, model: ClusterCostModel) -> Self {
        assert!(!assignment.is_empty(), "a cluster needs at least one node");
        ShardedCluster { assignment, model }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The nodes hosting `shard` (primary first, in assignment order).
    pub fn hosts(&self, shard: u64) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, shards)| shards.contains(&shard))
            .map(|(node, _)| node)
            .collect()
    }

    /// Replays a routed ledger: each task runs on the node the router pinned it to.
    /// The makespan is the busiest node's finish time plus the same serial /
    /// per-node / shuffle terms [`ClusterSim::makespan`] charges, so routed and
    /// LPT replays of the same work are directly comparable.
    ///
    /// Tasks must name an existing node and carry finite, non-negative costs.
    pub fn replay(&self, tasks: &[RoutedTask]) -> RoutedReport {
        let mut node_loads = vec![0.0f64; self.assignment.len()];
        let mut total_work = 0.0;
        for task in tasks {
            assert!(
                task.node < node_loads.len(),
                "routed task names node {} of a {}-node cluster",
                task.node,
                node_loads.len()
            );
            assert!(
                task.cost.is_finite() && task.cost >= 0.0,
                "task costs must be finite and non-negative"
            );
            node_loads[task.node] += task.cost;
            total_work += task.cost;
        }
        let busiest = node_loads.iter().cloned().fold(0.0, f64::max);
        let m = node_loads.len() as f64;
        let shuffle = self.model.shuffle_cost
            * total_work
            * ((m - 1.0) / m)
            * self.model.shuffle_stages as f64;
        let overhead = self.model.per_machine_overhead * m;
        RoutedReport {
            makespan: self.model.serial_cost + busiest + shuffle + overhead,
            node_loads,
            n_tasks: tasks.len(),
            total_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_tasks(n: usize, cost: f64) -> Vec<f64> {
        vec![cost; n]
    }

    #[test]
    fn makespan_decreases_with_more_machines() {
        let sim = ClusterSim::new(uniform_tasks(200, 0.1), ClusterCostModel::xmap_like());
        let mut prev = f64::INFINITY;
        for m in [1usize, 2, 4, 8, 16] {
            let t = sim.makespan(m);
            assert!(
                t < prev,
                "makespan should shrink: {t} on {m} machines (prev {prev})"
            );
            prev = t;
        }
    }

    #[test]
    fn speedup_is_one_at_baseline_and_grows() {
        let sim = ClusterSim::new(uniform_tasks(400, 0.05), ClusterCostModel::xmap_like());
        assert!((sim.speedup(5, 5) - 1.0).abs() < 1e-12);
        let s10 = sim.speedup(10, 5);
        let s20 = sim.speedup(20, 5);
        assert!(s10 > 1.0);
        assert!(s20 > s10);
        // ideal speedup from 5 to 20 machines is 4x; the model must stay below it
        assert!(s20 < 4.0, "speedup {s20} exceeds the ideal bound");
        // but an embarrassingly parallel job should stay reasonably close to linear
        assert!(s20 > 2.0, "X-Map-like job should scale well, got {s20}");
    }

    #[test]
    fn xmap_model_scales_better_than_als_model() {
        let tasks = uniform_tasks(400, 0.05);
        let xmap = ClusterSim::new(tasks.clone(), ClusterCostModel::xmap_like());
        let als = ClusterSim::new(tasks, ClusterCostModel::als_like());
        for m in [8usize, 12, 16, 20] {
            assert!(
                xmap.speedup(m, 5) > als.speedup(m, 5),
                "X-Map should out-scale ALS at {m} machines"
            );
        }
    }

    #[test]
    fn lpt_handles_skewed_tasks() {
        // one huge task dominates: makespan can never drop below it
        let mut tasks = uniform_tasks(50, 0.01);
        tasks.push(5.0);
        let sim = ClusterSim::new(tasks, ClusterCostModel::xmap_like());
        for m in [1usize, 4, 16] {
            assert!(sim.makespan(m) >= 5.0);
        }
    }

    #[test]
    fn speedup_curve_reports_every_requested_point() {
        let sim = ClusterSim::new(uniform_tasks(100, 0.02), ClusterCostModel::xmap_like());
        let counts = [4usize, 6, 8, 10, 12, 14, 16, 18, 20];
        let curve = sim.speedup_curve(&counts, 5);
        assert_eq!(curve.len(), counts.len());
        for (point, &m) in curve.iter().zip(&counts) {
            assert_eq!(point.machines, m);
            assert!(point.makespan > 0.0);
            assert!(point.speedup > 0.0);
        }
    }

    #[test]
    fn zero_machines_clamped_to_one() {
        let sim = ClusterSim::new(uniform_tasks(10, 0.1), ClusterCostModel::xmap_like());
        assert_eq!(sim.makespan(0), sim.makespan(1));
        assert_eq!(sim.n_tasks(), 10);
        assert!((sim.total_work() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_costs_rejected() {
        let _ = ClusterSim::new(vec![1.0, -0.5], ClusterCostModel::xmap_like());
    }

    #[test]
    fn routed_replay_pins_tasks_to_their_nodes() {
        let cluster = ShardedCluster::new(
            vec![vec![0], vec![1], vec![2], vec![3]],
            ClusterCostModel {
                serial_cost: 0.0,
                per_machine_overhead: 0.0,
                shuffle_cost: 0.0,
                shuffle_stages: 0,
            },
        );
        // Everything routed to node 2: no LPT rebalancing may hide the hotspot.
        let tasks: Vec<RoutedTask> = (0..10).map(|_| RoutedTask { node: 2, cost: 1.0 }).collect();
        let report = cluster.replay(&tasks);
        assert_eq!(report.n_tasks, 10);
        assert!((report.makespan - 10.0).abs() < 1e-12);
        assert!((report.node_loads[2] - 10.0).abs() < 1e-12);
        assert!(
            (report.imbalance() - 4.0).abs() < 1e-12,
            "one of four nodes does all the work"
        );
    }

    #[test]
    fn routed_replay_balanced_matches_lpt_parallel_part() {
        let model = ClusterCostModel::xmap_like();
        let cluster = ShardedCluster::new(vec![vec![0], vec![1]], model);
        let tasks = vec![
            RoutedTask { node: 0, cost: 2.0 },
            RoutedTask { node: 1, cost: 2.0 },
        ];
        let routed = cluster.replay(&tasks);
        let lpt = ClusterSim::new(vec![2.0, 2.0], model);
        assert!(
            (routed.makespan - lpt.makespan(2)).abs() < 1e-12,
            "a perfectly balanced routed trace costs exactly what LPT would"
        );
        assert!((routed.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hosts_reports_replica_placement() {
        let cluster = ShardedCluster::new(
            vec![vec![0, 1], vec![1], vec![2]],
            ClusterCostModel::xmap_like(),
        );
        assert_eq!(cluster.n_nodes(), 3);
        assert_eq!(cluster.hosts(1), vec![0, 1]);
        assert_eq!(cluster.hosts(2), vec![2]);
        assert!(cluster.hosts(9).is_empty());
    }

    #[test]
    #[should_panic(expected = "names node")]
    fn routed_task_beyond_cluster_is_rejected() {
        let cluster = ShardedCluster::new(vec![vec![0]], ClusterCostModel::xmap_like());
        let _ = cluster.replay(&[RoutedTask { node: 1, cost: 1.0 }]);
    }

    #[test]
    fn empty_routed_ledger_costs_only_overheads() {
        let model = ClusterCostModel::xmap_like();
        let cluster = ShardedCluster::new(vec![vec![0], vec![1]], model);
        let report = cluster.replay(&[]);
        assert_eq!(report.n_tasks, 0);
        assert!(
            (report.makespan - (model.serial_cost + model.per_machine_overhead * 2.0)).abs()
                < 1e-12
        );
        assert!((report.imbalance() - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// The makespan is always at least the largest task and at least total/machines,
        /// and never exceeds the single-machine makespan.
        #[test]
        fn makespan_bounds(
            costs in proptest::collection::vec(0.0f64..1.0, 1..100),
            machines in 1usize..24,
        ) {
            let model = ClusterCostModel { serial_cost: 0.0, per_machine_overhead: 0.0, shuffle_cost: 0.0, shuffle_stages: 0 };
            let sim = ClusterSim::new(costs.clone(), model);
            let t = sim.makespan(machines);
            let max_task = costs.iter().cloned().fold(0.0, f64::max);
            let lower = (sim.total_work() / machines as f64).max(max_task);
            prop_assert!(t >= lower - 1e-9, "makespan {t} below lower bound {lower}");
            prop_assert!(t <= sim.makespan(1) + 1e-9);
        }
    }
}
