//! Cooperative deterministic scheduler and happens-before tracker — the runtime the
//! instrumented [`super::shim`] types call into while a [`super::model`] run is
//! active.
//!
//! One execution of a model closure is serialized: exactly one model thread runs at
//! a time, and a thread hands control back to the scheduler at every *yield point*
//! (each atomic op, mutex op, spawn, join, or spin hint). At a yield point where
//! more than one thread is runnable the scheduler consults a replay prefix supplied
//! by the DFS explorer ([`super::model::Checker`]) and records the decision, which
//! is what makes exhaustive exploration and failure replay possible.
//!
//! The memory model explored is sequential consistency over the *values* (each
//! execution is one interleaving) plus a happens-before race detector over the
//! *orderings*: release stores / acquire loads / RMW release-sequences / mutex and
//! spawn/join edges build per-thread vector clocks, and every [`super::UnsafeCell`]
//! access is checked against them. A protocol whose safety leans on an `Acquire` or
//! `Release` that was weakened to `Relaxed` therefore fails with a reported data
//! race even though the serialized execution still read "correct" values — exactly
//! the class of bug `cargo test` cannot see. Spin loops must route through
//! [`super::hint::spin_loop`] / [`super::thread::yield_now`], which the model treats
//! as "blocked until some other thread performs a write", keeping executions finite.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on model threads per run (vector clocks are fixed-size arrays).
pub(crate) const MAX_THREADS: usize = 8;

/// A fixed-width vector clock, one component per possible model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    fn get(&self, tid: usize) -> u32 {
        self.0[tid]
    }

    fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    /// Waiting for a model mutex to be unlocked.
    Mutex(usize),
    /// Waiting for a thread to finish.
    Join(usize),
    /// Spin-yielded: runnable again after any other thread performs a write.
    Write,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// One recorded scheduling decision: the canonical list of runnable candidates and
/// which index was taken. The explorer backtracks by bumping `taken` on the deepest
/// record with untried alternatives.
#[derive(Clone, Debug)]
pub(crate) struct DecisionRecord {
    /// Candidate threads in canonical order (the yielding thread first when it is
    /// still runnable, then the rest ascending by id).
    pub alternatives: Vec<usize>,
    /// Index into `alternatives` that this execution took.
    pub taken: usize,
    /// The thread that yielded.
    pub current: usize,
    /// Whether `current` was itself still runnable (if so, choosing another thread
    /// is a preemption and counts against the bound).
    pub current_runnable: bool,
    /// Preemptions consumed on the path before this decision.
    pub preemptions_before: usize,
}

/// Why a model execution failed. Carried out of the run by
/// [`super::model::CheckFailure`].
#[derive(Clone, Debug)]
pub enum Failure {
    /// Two threads accessed a tracked cell without a happens-before edge.
    DataRace {
        /// Description of the second (detecting) access.
        access: &'static str,
        /// Thread performing the detecting access.
        thread: usize,
        /// Thread that performed the unordered earlier access.
        conflicts_with: usize,
    },
    /// A model thread panicked (assertion failure or protocol `expect`).
    Panic {
        /// The panicking thread.
        thread: usize,
        /// Panic payload rendered to text.
        message: String,
    },
    /// No thread was runnable but not all had finished.
    Deadlock {
        /// Status of every thread at the point of deadlock, rendered to text.
        blocked: Vec<String>,
    },
    /// One execution exceeded the per-execution step budget.
    StepLimit(usize),
    /// The model spawned more than [`MAX_THREADS`] threads.
    ThreadLimit(usize),
    /// The exploration exceeded its schedule budget before completing.
    ScheduleLimit(u64),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::DataRace {
                access,
                thread,
                conflicts_with,
            } => write!(
                f,
                "data race: {access} by thread {thread} is unordered with an access by thread {conflicts_with}"
            ),
            Failure::Panic { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            Failure::Deadlock { blocked } => write!(f, "deadlock: {}", blocked.join(", ")),
            Failure::StepLimit(n) => write!(f, "execution exceeded {n} steps"),
            Failure::ThreadLimit(n) => write!(f, "model spawned more than {n} threads"),
            Failure::ScheduleLimit(n) => write!(f, "exploration exceeded {n} schedules"),
        }
    }
}

#[derive(Default)]
struct AtomicMeta {
    /// The clock an acquire load of this location joins: maintained per the release
    /// rules (release store replaces, relaxed store clears, RMWs accumulate so
    /// release sequences survive interleaved relaxed RMWs).
    sync: VClock,
}

#[derive(Default)]
struct MutexMeta {
    locked_by: Option<usize>,
    sync: VClock,
}

#[derive(Default)]
struct CellMeta {
    /// Last write: (thread, its clock component at the write).
    write: Option<(usize, u32)>,
    /// Per-thread clock component at that thread's last read since the last write.
    reads: [Option<u32>; MAX_THREADS],
}

/// One trace entry: (thread, op label). Kept as a bounded ring for failure reports.
#[derive(Clone, Debug)]
pub(crate) struct TraceEvent {
    pub thread: usize,
    pub op: &'static str,
}

const TRACE_CAP: usize = 512;

pub(crate) struct Sched {
    threads: Vec<Status>,
    clocks: [VClock; MAX_THREADS],
    active: Option<usize>,
    prefix: Vec<usize>,
    depth: usize,
    pub(crate) decisions: Vec<DecisionRecord>,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    atomics: HashMap<usize, AtomicMeta>,
    mutexes: HashMap<usize, MutexMeta>,
    cells: HashMap<usize, CellMeta>,
    pub(crate) failure: Option<Failure>,
    abort: bool,
    done: bool,
    pub(crate) trace: Vec<TraceEvent>,
}

impl Sched {
    fn note_step(&mut self, tid: usize, op: &'static str) -> Result<(), ()> {
        self.steps += 1;
        if self.trace.len() < TRACE_CAP {
            self.trace.push(TraceEvent { thread: tid, op });
        }
        if self.steps > self.max_steps {
            return Err(());
        }
        Ok(())
    }

    fn runnable_others(&self, tid: usize) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| t != tid && self.threads[t] == Status::Runnable)
            .collect()
    }

    /// Canonical candidate list at a yield of `tid`: `tid` first when runnable
    /// (index 0 is always the non-preemptive default), then others ascending.
    fn alternatives(&self, tid: usize, current_runnable: bool) -> Vec<usize> {
        let mut alts = Vec::new();
        if current_runnable {
            alts.push(tid);
        }
        alts.extend(self.runnable_others(tid));
        alts
    }

    fn decide(&mut self, current: usize, current_runnable: bool, alts: Vec<usize>) -> usize {
        debug_assert!(!alts.is_empty());
        if alts.len() == 1 {
            return alts[0];
        }
        let taken = if self.depth < self.prefix.len() {
            self.prefix[self.depth].min(alts.len() - 1)
        } else {
            0
        };
        let chosen = alts[taken];
        self.decisions.push(DecisionRecord {
            alternatives: alts,
            taken,
            current,
            current_runnable,
            preemptions_before: self.preemptions,
        });
        self.depth += 1;
        if current_runnable && chosen != current {
            self.preemptions += 1;
        }
        chosen
    }

    fn wake(&mut self, pred: impl Fn(BlockOn) -> bool) {
        for t in 0..self.threads.len() {
            if let Status::Blocked(on) = self.threads[t] {
                if pred(on) {
                    self.threads[t] = Status::Runnable;
                }
            }
        }
    }

    fn tick(&mut self, tid: usize) {
        self.clocks[tid].tick(tid);
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| *t == Status::Finished)
    }
}

/// Shared state of one model execution. The explorer creates a fresh one per
/// schedule; model threads reach it through the thread-local context.
pub(crate) struct RunState {
    sched: Mutex<Sched>,
    conds: [Condvar; MAX_THREADS],
    done_cv: Condvar,
}

/// Panic payload used to unwind model threads after a failure was recorded.
pub(crate) struct ModelAbort;

fn abort_panic() -> ! {
    panic::panic_any(ModelAbort)
}

impl RunState {
    pub(crate) fn new(prefix: Vec<usize>, max_steps: usize) -> Self {
        let mut threads = Vec::with_capacity(MAX_THREADS);
        threads.push(Status::Runnable); // root thread, tid 0
        RunState {
            sched: Mutex::new(Sched {
                threads,
                clocks: [VClock::default(); MAX_THREADS],
                active: Some(0),
                prefix,
                depth: 0,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                max_steps,
                atomics: HashMap::new(),
                mutexes: HashMap::new(),
                cells: HashMap::new(),
                failure: None,
                abort: false,
                done: false,
                trace: Vec::new(),
            }),
            conds: std::array::from_fn(|_| Condvar::new()),
            done_cv: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn notify_everyone(&self) {
        for c in &self.conds {
            c.notify_all();
        }
        self.done_cv.notify_all();
    }

    /// Records `failure` (first one wins), puts the run into abort mode and wakes
    /// every thread so it can unwind at its next yield.
    fn fail_locked(&self, s: &mut Sched, failure: Failure) {
        if s.failure.is_none() {
            s.failure = Some(failure);
        }
        s.abort = true;
        self.notify_everyone();
    }

    /// The standard yield point: record the step, decide who runs next, and wait
    /// until this thread is the active one again.
    fn schedule_op(&self, tid: usize, op: &'static str) {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            abort_panic();
        }
        if s.note_step(tid, op).is_err() {
            let max = s.max_steps;
            self.fail_locked(&mut s, Failure::StepLimit(max));
            drop(s);
            abort_panic();
        }
        let alts = s.alternatives(tid, true);
        let chosen = s.decide(tid, true, alts);
        if chosen != tid {
            s.active = Some(chosen);
            self.conds[chosen].notify_one();
            self.wait_active(s, tid);
        } else {
            s.active = Some(tid);
        }
    }

    fn wait_active(&self, mut s: MutexGuard<'_, Sched>, tid: usize) {
        loop {
            if s.abort {
                drop(s);
                abort_panic();
            }
            if s.active == Some(tid) && s.threads[tid] == Status::Runnable {
                return;
            }
            s = self.conds[tid]
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks `tid` on `why`, hands control to another thread and waits until this
    /// thread is woken *and* scheduled again.
    fn block_until_woken(&self, tid: usize, why: BlockOn, op: &'static str) {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            abort_panic();
        }
        if s.note_step(tid, op).is_err() {
            let max = s.max_steps;
            self.fail_locked(&mut s, Failure::StepLimit(max));
            drop(s);
            abort_panic();
        }
        s.threads[tid] = Status::Blocked(why);
        let alts = s.alternatives(tid, false);
        if alts.is_empty() {
            let blocked = render_statuses(&s);
            self.fail_locked(&mut s, Failure::Deadlock { blocked });
            drop(s);
            abort_panic();
        }
        let chosen = s.decide(tid, false, alts);
        s.active = Some(chosen);
        self.conds[chosen].notify_one();
        self.wait_active(s, tid);
    }
}

fn render_statuses(s: &Sched) -> Vec<String> {
    s.threads
        .iter()
        .enumerate()
        .map(|(t, st)| format!("thread {t}: {st:?}"))
        .collect()
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: RefCell<Option<(Arc<RunState>, usize)>> = const { RefCell::new(None) };
}

/// The current model context of this OS thread, if it is executing inside a model
/// run. The shims consult this on every operation; `None` means "fall back to std".
#[inline]
pub(crate) fn current() -> Option<(Arc<RunState>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether this OS thread is executing inside a model run. Safe to call from a
/// panic hook (tolerates a torn-down thread-local).
pub(crate) fn in_model() -> bool {
    CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

pub(crate) fn install(run: Arc<RunState>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((run, tid)));
}

pub(crate) fn uninstall() {
    CTX.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Ordering predicates
// ---------------------------------------------------------------------------

fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ---------------------------------------------------------------------------
// Operation hooks (called by the shims with a live context)
// ---------------------------------------------------------------------------

pub(crate) fn atomic_load<R>(
    run: &RunState,
    tid: usize,
    addr: usize,
    order: Ordering,
    f: impl FnOnce() -> R,
) -> R {
    run.schedule_op(tid, "atomic-load");
    let value = f();
    let mut s = run.lock();
    if acquires(order) {
        let sync = s.atomics.entry(addr).or_default().sync;
        s.clocks[tid].join(&sync);
    }
    s.tick(tid);
    value
}

pub(crate) fn atomic_store<R>(
    run: &RunState,
    tid: usize,
    addr: usize,
    order: Ordering,
    f: impl FnOnce() -> R,
) -> R {
    run.schedule_op(tid, "atomic-store");
    let value = f();
    let mut s = run.lock();
    let clock = s.clocks[tid];
    let meta = s.atomics.entry(addr).or_default();
    // A plain store replaces the location's release history: later acquire loads
    // synchronize only with this store's releaser (or with nobody, for Relaxed).
    meta.sync = if releases(order) {
        clock
    } else {
        VClock::default()
    };
    s.wake(|on| on == BlockOn::Write);
    s.tick(tid);
    value
}

pub(crate) fn atomic_rmw<R>(
    run: &RunState,
    tid: usize,
    addr: usize,
    order: Ordering,
    f: impl FnOnce() -> R,
) -> R {
    run.schedule_op(tid, "atomic-rmw");
    let value = f();
    let mut s = run.lock();
    if acquires(order) {
        let sync = s.atomics.entry(addr).or_default().sync;
        s.clocks[tid].join(&sync);
    }
    if releases(order) {
        // An RMW continues the release sequence: accumulate rather than replace, so
        // an acquire load reading the end of an RMW chain synchronizes with every
        // releasing writer in the chain.
        let clock = s.clocks[tid];
        s.atomics.entry(addr).or_default().sync.join(&clock);
    }
    s.wake(|on| on == BlockOn::Write);
    s.tick(tid);
    value
}

pub(crate) fn cell_read(run: &RunState, tid: usize, addr: usize) {
    let mut s = run.lock();
    if s.abort {
        drop(s);
        abort_panic();
    }
    let clock = s.clocks[tid];
    let last_write = s.cells.entry(addr).or_default().write;
    if let Some((wt, wep)) = last_write {
        if wt != tid && clock.get(wt) < wep {
            self_fail_race(run, &mut s, "cell read", tid, wt);
        }
    }
    let epoch = clock.get(tid);
    s.cells.entry(addr).or_default().reads[tid] = Some(epoch);
    s.tick(tid);
}

pub(crate) fn cell_write(run: &RunState, tid: usize, addr: usize) {
    let mut s = run.lock();
    if s.abort {
        drop(s);
        abort_panic();
    }
    let clock = s.clocks[tid];
    let (last_write, last_reads) = {
        let meta = s.cells.entry(addr).or_default();
        (meta.write, meta.reads)
    };
    if let Some((wt, wep)) = last_write {
        if wt != tid && clock.get(wt) < wep {
            self_fail_race(run, &mut s, "cell write", tid, wt);
        }
    }
    for (t, read) in last_reads.iter().enumerate() {
        if t == tid {
            continue;
        }
        if let Some(rep) = *read {
            if clock.get(t) < rep {
                self_fail_race(run, &mut s, "cell write", tid, t);
            }
        }
    }
    let epoch = clock.get(tid);
    let meta = s.cells.entry(addr).or_default();
    meta.write = Some((tid, epoch));
    meta.reads = [None; MAX_THREADS];
    s.tick(tid);
}

fn self_fail_race(
    run: &RunState,
    s: &mut Sched,
    access: &'static str,
    tid: usize,
    other: usize,
) -> ! {
    run.fail_locked(
        s,
        Failure::DataRace {
            access,
            thread: tid,
            conflicts_with: other,
        },
    );
    abort_panic()
}

pub(crate) fn mutex_lock(run: &RunState, tid: usize, addr: usize) {
    run.schedule_op(tid, "mutex-lock");
    loop {
        {
            let mut s = run.lock();
            if s.abort {
                drop(s);
                abort_panic();
            }
            let meta = s.mutexes.entry(addr).or_default();
            if meta.locked_by.is_none() {
                meta.locked_by = Some(tid);
                let sync = meta.sync;
                s.clocks[tid].join(&sync);
                s.tick(tid);
                return;
            }
        }
        run.block_until_woken(tid, BlockOn::Mutex(addr), "mutex-wait");
    }
}

pub(crate) fn mutex_unlock(run: &RunState, tid: usize, addr: usize) {
    run.schedule_op(tid, "mutex-unlock");
    let mut s = run.lock();
    let clock = s.clocks[tid];
    let meta = s.mutexes.entry(addr).or_default();
    debug_assert_eq!(meta.locked_by, Some(tid), "unlock by non-owner");
    meta.locked_by = None;
    meta.sync = clock;
    // Unlock both unblocks lock-waiters and counts as a write event for spinners.
    s.wake(|on| on == BlockOn::Mutex(addr) || on == BlockOn::Write);
    s.tick(tid);
}

/// Spin hint / yield inside a model: the thread parks until another thread performs
/// a write, which keeps `while x.load() != v {}` loops finite under exploration
/// (re-reading an unchanged location is stutter-equivalent and never explored).
pub(crate) fn spin_yield(run: &RunState, tid: usize) {
    run.block_until_woken(tid, BlockOn::Write, "spin-yield");
}

/// Registers a child thread: called from the parent at the spawn yield point.
/// Returns the child's thread id.
pub(crate) fn spawn_thread(run: &RunState, parent: usize) -> usize {
    run.schedule_op(parent, "spawn");
    let mut s = run.lock();
    let tid = s.threads.len();
    if tid >= MAX_THREADS {
        run.fail_locked(&mut s, Failure::ThreadLimit(MAX_THREADS));
        drop(s);
        abort_panic();
    }
    s.threads.push(Status::Runnable);
    s.clocks[tid] = s.clocks[parent];
    s.tick(tid);
    s.tick(parent);
    tid
}

/// A spawned model thread's body, dispatched to a [`pool`] worker. Waits to be
/// scheduled, runs `f`, stores the outcome in `slot` for the joining thread, and
/// reports to the scheduler. Model runs are far more numerous than threads are
/// long-lived, so workers persist across schedules — OS-thread spawns would
/// otherwise dominate exploration cost several times over.
pub(crate) fn run_model_thread<T>(
    run: Arc<RunState>,
    tid: usize,
    f: impl FnOnce() -> T,
    slot: &Mutex<Option<std::thread::Result<T>>>,
) {
    install(Arc::clone(&run), tid);
    {
        let s = run.lock();
        // First yield: a freshly spawned thread runs only once scheduled. If the
        // run is already aborting, wait_active panics and the thread just reports
        // itself finished.
        let result = panic::catch_unwind(AssertUnwindSafe(|| run.wait_active(s, tid)));
        if result.is_err() {
            thread_finished(&run, tid, None);
            uninstall();
            return;
        }
    }
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
            thread_finished(&run, tid, None);
        }
        Err(payload) => {
            thread_finished(&run, tid, classify_panic(tid, payload));
        }
    }
    uninstall();
}

/// One persistent pool worker: executes dispatched model-thread bodies in order.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolWorker {
    tx: mpsc::Sender<Job>,
}

static SPAWN_POOL: OnceLock<Vec<PoolWorker>> = OnceLock::new();

/// Dispatches a model-thread body to the persistent worker for `tid`. Workers are
/// created on first use and live for the process; explorations are serialized (the
/// checker's global lock), and within one schedule each tid is used at most once,
/// so each worker runs at most one job at a time.
pub(crate) fn dispatch(tid: usize, job: Job) {
    let pool = SPAWN_POOL.get_or_init(|| {
        (1..MAX_THREADS)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<Job>();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                });
                PoolWorker { tx }
            })
            .collect()
    });
    pool[tid - 1].tx.send(job).expect("model pool worker died"); // lint: panic — reviewed invariant
}

/// Maps a caught panic payload to a recordable failure; `ModelAbort` payloads mean
/// the failure was already recorded elsewhere.
pub(crate) fn classify_panic(
    tid: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> Option<Failure> {
    if payload.downcast_ref::<ModelAbort>().is_some() {
        return None;
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    Some(Failure::Panic {
        thread: tid,
        message,
    })
}

/// Cooperative join: waits (blocking this model thread) until `target` finishes,
/// then joins its final clock into ours.
pub(crate) fn join_thread(run: &RunState, tid: usize, target: usize) {
    run.schedule_op(tid, "join");
    loop {
        {
            let mut s = run.lock();
            if s.abort {
                drop(s);
                abort_panic();
            }
            if s.threads[target] == Status::Finished {
                let final_clock = s.clocks[target];
                s.clocks[tid].join(&final_clock);
                s.tick(tid);
                return;
            }
        }
        run.block_until_woken(tid, BlockOn::Join(target), "join-wait");
    }
}

/// Marks `tid` finished, records `failure` if any, wakes joiners and either ends
/// the run (all finished) or hands control to the next runnable thread.
pub(crate) fn thread_finished(run: &RunState, tid: usize, failure: Option<Failure>) {
    let mut s = run.lock();
    if let Some(f) = failure {
        run.fail_locked(&mut s, f);
    }
    s.threads[tid] = Status::Finished;
    s.wake(|on| on == BlockOn::Join(tid));
    if s.all_finished() {
        s.done = true;
        s.active = None;
        run.notify_everyone();
        return;
    }
    if s.abort {
        // Unwinding: everyone has been woken by fail_locked; they exit at their
        // next yield. No scheduling decisions are recorded past the failure.
        run.notify_everyone();
        return;
    }
    let alts = s.alternatives(tid, false);
    if alts.is_empty() {
        let blocked = render_statuses(&s);
        run.fail_locked(&mut s, Failure::Deadlock { blocked });
        return;
    }
    let chosen = s.decide(tid, false, alts);
    s.active = Some(chosen);
    run.conds[chosen].notify_one();
}

/// Blocks the calling (root) thread until every model thread has finished.
pub(crate) fn wait_done(run: &RunState) {
    let mut s = run.lock();
    while !s.done {
        s = run.done_cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
}
