//! Seeded-bug hooks that prove the model checker sharp.
//!
//! The epoch-publication protocol consults these hooks (only in checked builds; the
//! normal build compiles the literal orderings) at the handful of sites whose
//! memory ordering is load-bearing. A mutation-gate test arms one [`Mutation`] at a
//! time via [`super::model::Checker::check_with_mutation`] and asserts the checker
//! *fails* — a data race or invariant panic — while the unmutated protocol passes.
//! A checker that cannot distinguish the two would be decorative.

use std::sync::atomic::{AtomicU8, Ordering};

/// A deliberately seeded protocol bug. At most one is armed at a time, and only
/// for the duration of one [`super::model::Checker`] exploration (runs are
/// serialized on a global lock, so mutations cannot leak across tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Weaken the publisher's slot-pointer store from `Release` to `Relaxed`: the
    /// reader's acquire load no longer synchronizes with the value written into the
    /// slot, racing the publisher's cell write against the reader's cell read.
    PublishStoreRelaxed,
    /// Weaken the reader's pin-path loads of the packed word from `Acquire`/`SeqCst`
    /// to `Relaxed`: the acquire side of the publish edge disappears, with the same
    /// race as [`Mutation::PublishStoreRelaxed`].
    PinLoadRelaxed,
    /// Skip the reader's revalidation of the packed word after pinning: a reader
    /// that raced a publish may clone from a slot the publisher is concurrently
    /// retiring.
    SkipRevalidate,
    /// Weaken the publisher's drain load of the slot reader count from `Acquire` to
    /// `Relaxed`: draining no longer synchronizes with the last reader's unpin, so
    /// retiring the slot value races that reader's cell access.
    DrainLoadRelaxed,
}

/// A protocol site that consults [`ordering`]. One site may cover several textual
/// loads (e.g. both pin-path loads of the packed word).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    /// The publisher's store of the packed `epoch|slot` word.
    PublishStore,
    /// The reader's loads of the packed word on the pin path.
    PinLoad,
    /// The publisher's load of a slot's reader count while draining.
    DrainLoad,
}

const NONE: u8 = 0;

fn code(m: Mutation) -> u8 {
    match m {
        Mutation::PublishStoreRelaxed => 1,
        Mutation::PinLoadRelaxed => 2,
        Mutation::SkipRevalidate => 3,
        Mutation::DrainLoadRelaxed => 4,
    }
}

static ARMED: AtomicU8 = AtomicU8::new(NONE);

/// Arms `m` (or disarms everything with `None`). Called only by the checker, which
/// holds the global run lock, so plain `SeqCst` on a process-global is enough.
pub(crate) fn arm(m: Option<Mutation>) {
    ARMED.store(m.map(code).unwrap_or(NONE), Ordering::SeqCst);
}

fn armed() -> u8 {
    ARMED.load(Ordering::SeqCst)
}

/// The ordering a protocol site should use: `default` normally, `Relaxed` when the
/// matching weakening mutation is armed.
#[inline]
pub fn ordering(site: Site, default: Ordering) -> Ordering {
    let weakened = match site {
        Site::PublishStore => armed() == code(Mutation::PublishStoreRelaxed),
        Site::PinLoad => armed() == code(Mutation::PinLoadRelaxed),
        Site::DrainLoad => armed() == code(Mutation::DrainLoadRelaxed),
    };
    if weakened {
        Ordering::Relaxed
    } else {
        default
    }
}

/// Whether the reader's post-pin revalidation should be skipped (the
/// [`Mutation::SkipRevalidate`] mutant).
#[inline]
pub fn skip_revalidate() -> bool {
    armed() == code(Mutation::SkipRevalidate)
}
