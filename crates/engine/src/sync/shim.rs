//! Instrumented stand-ins for the `std::sync` types the facade exports in checked
//! builds.
//!
//! Every type wraps its `std` counterpart and consults [`rt::current`] on each
//! operation: with no model context installed (a unified `cargo test` build running
//! ordinary tests) the operation is the plain `std` one, so production behaviour is
//! unchanged; inside a [`super::model::Checker`] run the operation first yields to
//! the deterministic scheduler and feeds the happens-before tracker.

use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, PoisonError};

use super::rt;

macro_rules! model_atomic {
    ($name:ident, $std:ty, $raw:ty) => {
        /// Instrumented atomic: `std` behaviour outside a model run, a scheduler
        /// yield point plus vector-clock bookkeeping inside one.
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $raw) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Atomic load; `order` drives the model's acquire edges.
            #[inline]
            pub fn load(&self, order: Ordering) -> $raw {
                match rt::current() {
                    None => self.inner.load(order),
                    Some((run, tid)) => rt::atomic_load(&run, tid, self.addr(), order, || {
                        // The model serializes execution, so SeqCst here only keeps
                        // the physical op well-defined; `order` is interpreted by
                        // the vector clocks instead.
                        self.inner.load(Ordering::SeqCst)
                    }),
                }
            }

            /// Atomic store; `order` drives the model's release edges.
            #[inline]
            pub fn store(&self, value: $raw, order: Ordering) {
                match rt::current() {
                    None => self.inner.store(value, order),
                    Some((run, tid)) => rt::atomic_store(&run, tid, self.addr(), order, || {
                        self.inner.store(value, Ordering::SeqCst)
                    }),
                }
            }

            /// Atomic add returning the previous value; an RMW continues the
            /// location's release sequence in the model.
            #[inline]
            pub fn fetch_add(&self, value: $raw, order: Ordering) -> $raw {
                match rt::current() {
                    None => self.inner.fetch_add(value, order),
                    Some((run, tid)) => rt::atomic_rmw(&run, tid, self.addr(), order, || {
                        self.inner.fetch_add(value, Ordering::SeqCst)
                    }),
                }
            }

            /// Atomic subtract returning the previous value (RMW, like
            /// [`Self::fetch_add`]).
            #[inline]
            pub fn fetch_sub(&self, value: $raw, order: Ordering) -> $raw {
                match rt::current() {
                    None => self.inner.fetch_sub(value, order),
                    Some((run, tid)) => rt::atomic_rmw(&run, tid, self.addr(), order, || {
                        self.inner.fetch_sub(value, Ordering::SeqCst)
                    }),
                }
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented mutex. Inside a model run the *model* arbitrates ownership (a
/// contended lock blocks cooperatively and the unlock edge joins vector clocks);
/// the inner `std` mutex is then always uncontended and only provides the guard.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the mutex, blocking (cooperatively, under the model) until it is
    /// free. Mirrors `std::sync::Mutex::lock`'s poison contract.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = match rt::current() {
            None => None,
            Some((run, tid)) => {
                rt::mutex_lock(&run, tid, self.addr());
                Some((run, tid, self.addr()))
            }
        };
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }
}

/// Guard for [`Mutex`]; releasing it performs the model's unlock edge.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<rt::RunState>, usize, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop") // lint: panic — reviewed invariant
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop") // lint: panic — reviewed invariant
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std mutex first so the guard is gone before the model yields.
        self.inner = None;
        if let Some((run, tid, addr)) = self.model.take() {
            // A panicking model thread skips the cooperative unlock: its failure is
            // being recorded and the whole run is unwinding anyway, and scheduling
            // from inside an unwinding Drop could panic again (a process abort).
            if !std::thread::panicking() {
                rt::mutex_unlock(&run, tid, addr);
            }
        }
    }
}

/// `std::cell::UnsafeCell` with the closure access API; inside a model run every
/// access is checked against the happens-before race detector.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Calls `f` with a shared raw pointer to the contents.
    ///
    /// # Safety contract
    /// Same as `std::cell::UnsafeCell::get`: the surrounding protocol must make the
    /// access race-free. Inside a model run that claim is *verified* — an unordered
    /// concurrent write fails the check with a `DataRace` report.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((run, tid)) = rt::current() {
            rt::cell_read(&run, tid, self.addr());
        }
        f(self.0.get())
    }

    /// Calls `f` with an exclusive raw pointer to the contents (same safety
    /// contract as [`UnsafeCell::with`], checked as a write).
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((run, tid)) = rt::current() {
            rt::cell_write(&run, tid, self.addr());
        }
        f(self.0.get())
    }
}

/// Thread entry points of the facade: `std::thread` outside a model run, model
/// threads (registered with the scheduler, happens-before edges at spawn and join)
/// inside one.
pub mod thread {
    use std::sync::Arc;

    use super::super::rt;

    type ResultSlot<T> = Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>;

    enum Handle<T> {
        /// A plain `std` thread (no model run active at spawn time).
        Std(std::thread::JoinHandle<T>),
        /// A model thread (running on a persistent pool worker); `join` waits
        /// cooperatively under the scheduler, then takes the result from the slot.
        Model {
            /// Filled by the child before it reports itself finished.
            slot: ResultSlot<T>,
            /// Model thread id of the child.
            tid: usize,
            /// The run the child belongs to.
            run: Arc<rt::RunState>,
        },
    }

    /// Handle to a facade-spawned thread.
    pub struct JoinHandle<T>(Handle<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result, like
        /// `std::thread::JoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Handle::Std(h) => h.join(),
                Handle::Model { slot, tid, run } => {
                    // lint: panic — reviewed invariant
                    let (me_run, me) = rt::current().expect(
                        "model thread handles must be joined from inside the same model run",
                    );
                    debug_assert!(Arc::ptr_eq(&me_run, &run));
                    rt::join_thread(&run, me, tid);
                    // join_thread returns only once the child is finished, and a
                    // child that panicked records a failure that aborts us inside
                    // join_thread — so the slot is filled here; the Err arm is a
                    // defensive fallback.
                    let result = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take();
                    result.unwrap_or_else(|| Err(Box::new("model thread failed")))
                }
            }
        }
    }

    /// Spawns a thread running `f`, like `std::thread::spawn`. Under a model run
    /// the child inherits the spawner's vector clock, runs on a persistent pool
    /// worker and waits to be scheduled.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current() {
            None => JoinHandle(Handle::Std(std::thread::spawn(f))),
            Some((run, parent)) => {
                let tid = rt::spawn_thread(&run, parent);
                let slot: ResultSlot<T> = Arc::new(std::sync::Mutex::new(None));
                let child_run = Arc::clone(&run);
                let child_slot = Arc::clone(&slot);
                rt::dispatch(
                    tid,
                    Box::new(move || rt::run_model_thread(child_run, tid, f, &child_slot)),
                );
                JoinHandle(Handle::Model { slot, tid, run })
            }
        }
    }

    /// Cooperative yield: `std::thread::yield_now` normally; under the model the
    /// caller blocks until another thread performs a write (see the facade
    /// spin-loop contract).
    pub fn yield_now() {
        match rt::current() {
            None => std::thread::yield_now(),
            Some((run, tid)) => rt::spin_yield(&run, tid),
        }
    }
}

/// Spin-wait hints of the facade.
pub mod hint {
    use super::super::rt;

    /// `std::hint::spin_loop` normally; under the model, identical to
    /// [`super::thread::yield_now`] — the spinner blocks until a write occurs, which
    /// is what keeps busy-wait loops finite under exhaustive exploration.
    pub fn spin_loop() {
        match rt::current() {
            None => std::hint::spin_loop(),
            Some((run, tid)) => rt::spin_yield(&run, tid),
        }
    }
}
