//! The schedule explorer: exhaustive DFS over the scheduler's decision points.
//!
//! A [`Checker`] runs a closure-defined multi-threaded test repeatedly, one
//! deterministic interleaving per run. Each run records the scheduling decisions it
//! took ([`super::rt::DecisionRecord`]); backtracking takes the deepest decision
//! with an untried alternative and replays the prefix up to it, which enumerates
//! every schedule exactly once. An optional *preemption bound* prunes the space to
//! schedules with at most N involuntary context switches — most concurrency bugs
//! need very few preemptions (the literature's rule of thumb is two), so a small
//! bound keeps larger models affordable while still falsifying broken protocols.
//!
//! Failures (data races from the vector-clock tracker, panics from protocol
//! assertions, deadlocks, budget blow-outs) abort the run and are returned as a
//! [`CheckFailure`] carrying the event trace of the failing schedule.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once, PoisonError};

use super::rt::{self, DecisionRecord, RunState, TraceEvent};
use super::seeded::{self, Mutation};

pub use super::rt::Failure;

/// One explored run can visit this many yield points before the checker calls it a
/// livelock ([`Failure::StepLimit`]).
const DEFAULT_MAX_STEPS: usize = 20_000;

/// Default budget on the number of schedules per exploration.
const DEFAULT_MAX_SCHEDULES: u64 = 5_000_000;

/// Explorations are process-global (thread-local contexts, the seeded-mutation
/// switch, the panic hook): serialize them so `cargo test`'s threaded runner cannot
/// interleave two checkers.
static CHECK_LOCK: Mutex<()> = Mutex::new(());

static PANIC_HOOK: Once = Once::new();

/// Installs a process-wide panic hook that silences panics on threads currently
/// inside a model run (every failing schedule unwinds its threads by panic; the
/// default hook would print a backtrace per abandoned schedule). Panics outside
/// model runs are forwarded to the previously installed hook.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if rt::in_model() {
                return;
            }
            prev(info);
        }));
    });
}

/// Summary of a completed (all schedules passed) exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules explored.
    pub schedules: u64,
    /// Deepest decision stack seen across all schedules.
    pub max_depth: usize,
    /// The preemption bound the exploration ran under (`None` = unbounded, i.e.
    /// fully exhaustive over all interleavings).
    pub preemption_bound: Option<usize>,
}

/// A failed exploration: the first failing schedule, with enough detail to
/// understand and replay it.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// What went wrong.
    pub failure: Failure,
    /// Schedules fully explored before the failing one.
    pub schedules_explored: u64,
    /// The decision prefix that reproduces the failing schedule.
    pub prefix: Vec<usize>,
    /// Bounded event trace of the failing schedule: `(thread, operation)`.
    pub trace: Vec<(usize, &'static str)>,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model check failed after {} passing schedule(s): {}",
            self.schedules_explored, self.failure
        )?;
        writeln!(f, "replay prefix: {:?}", self.prefix)?;
        writeln!(f, "failing schedule trace (thread, op):")?;
        for (thread, op) in &self.trace {
            writeln!(f, "  [{thread}] {op}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckFailure {}

impl CheckFailure {
    /// True when the failure is a data race report (as opposed to a panic,
    /// deadlock or budget blow-out).
    pub fn is_data_race(&self) -> bool {
        matches!(self.failure, Failure::DataRace { .. })
    }

    /// True when the failure is a panic whose message contains `needle`.
    pub fn is_panic_containing(&self, needle: &str) -> bool {
        matches!(&self.failure, Failure::Panic { message, .. } if message.contains(needle))
    }
}

/// Deterministic model checker: exhaustive DFS over schedules, optionally bounded
/// by preemption count and schedule budget.
#[derive(Clone, Debug)]
pub struct Checker {
    preemption_bound: Option<usize>,
    max_schedules: u64,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: None,
            max_schedules: DEFAULT_MAX_SCHEDULES,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }
}

impl Checker {
    /// A fully exhaustive checker (no preemption bound).
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits exploration to schedules with at most `bound` preemptions (context
    /// switches away from a still-runnable thread). Voluntary switches — blocking
    /// on a contended lock, spinning on a condition, finishing — are always free.
    pub fn with_preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Caps the number of schedules explored; exceeding the cap fails the check
    /// with [`Failure::ScheduleLimit`] rather than silently passing.
    pub fn with_max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = max;
        self
    }

    /// Caps the yield points a single schedule may visit (livelock guard).
    pub fn with_max_steps(mut self, max: usize) -> Self {
        self.max_steps = max;
        self
    }

    /// Explores every schedule of `f` (under the configured bounds). Returns the
    /// exploration summary if all schedules pass, or the first failure.
    ///
    /// `f` runs once per schedule on the calling thread (as model thread 0) and
    /// spawns further model threads through [`super::thread::spawn`]; all shared
    /// state must go through the facade types for the checker to see it.
    pub fn check<F: Fn()>(&self, f: F) -> Result<Report, CheckFailure> {
        let _guard = CHECK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        self.explore(&f)
    }

    /// Like [`Checker::check`], but with the seeded bug `mutation` armed for the
    /// duration of the exploration. Used by the mutation-gate tests that prove the
    /// checker catches weakened orderings.
    pub fn check_with_mutation<F: Fn()>(
        &self,
        mutation: Mutation,
        f: F,
    ) -> Result<Report, CheckFailure> {
        let _guard = CHECK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        seeded::arm(Some(mutation));
        let result = self.explore(&f);
        seeded::arm(None);
        result
    }

    fn explore<F: Fn()>(&self, f: &F) -> Result<Report, CheckFailure> {
        install_panic_hook();
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules: u64 = 0;
        let mut max_depth = 0;
        loop {
            if schedules >= self.max_schedules {
                return Err(CheckFailure {
                    failure: Failure::ScheduleLimit(self.max_schedules),
                    schedules_explored: schedules,
                    prefix,
                    trace: Vec::new(),
                });
            }
            let outcome = self.run_once(prefix.clone(), f);
            max_depth = max_depth.max(outcome.decisions.len());
            if let Some(failure) = outcome.failure {
                return Err(CheckFailure {
                    failure,
                    schedules_explored: schedules,
                    prefix,
                    trace: outcome
                        .trace
                        .iter()
                        .map(|e: &TraceEvent| (e.thread, e.op))
                        .collect(),
                });
            }
            schedules += 1;
            match advance(&outcome.decisions, self.preemption_bound) {
                Some(next) => prefix = next,
                None => {
                    return Ok(Report {
                        schedules,
                        max_depth,
                        preemption_bound: self.preemption_bound,
                    })
                }
            }
        }
    }

    fn run_once<F: Fn()>(&self, prefix: Vec<usize>, f: &F) -> RunOutcome {
        let run = Arc::new(RunState::new(prefix, self.max_steps));
        rt::install(Arc::clone(&run), 0);
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        let failure = match result {
            Ok(()) => None,
            Err(payload) => rt::classify_panic(0, payload),
        };
        rt::thread_finished(&run, 0, failure);
        rt::wait_done(&run);
        rt::uninstall();
        let s = run.lock();
        RunOutcome {
            decisions: s.decisions.clone(),
            failure: s.failure.clone(),
            trace: s.trace.clone(),
        }
    }
}

struct RunOutcome {
    decisions: Vec<DecisionRecord>,
    failure: Option<Failure>,
    trace: Vec<TraceEvent>,
}

/// DFS backtracking: the next replay prefix, or `None` when the space (under the
/// preemption bound) is exhausted. Takes the deepest decision with an untried
/// alternative; an alternative that would preempt a runnable thread is skipped
/// once the path has already spent its preemption budget.
fn advance(decisions: &[DecisionRecord], bound: Option<usize>) -> Option<Vec<usize>> {
    let mut i = decisions.len();
    while i > 0 {
        i -= 1;
        let d = &decisions[i];
        let mut next = d.taken + 1;
        while next < d.alternatives.len() {
            let preemptive = d.current_runnable && d.alternatives[next] != d.current;
            if preemptive && bound.is_some_and(|b| d.preemptions_before >= b) {
                next += 1;
                continue;
            }
            let mut p: Vec<usize> = decisions[..i].iter().map(|r| r.taken).collect();
            p.push(next);
            return Some(p);
        }
    }
    None
}
