//! The workspace's concurrency facade: `std::sync` normally, instrumented shims
//! under the model checker.
//!
//! Every crate in the workspace that needs atomics, locks or shared cells on a
//! concurrency-critical path imports them from here instead of `std::sync` (the
//! `xmap-lint` `atomic-facade` rule enforces this). The facade has two personalities,
//! selected at compile time:
//!
//! * **Normal builds** (`cargo build` / `cargo test` without the `model-check`
//!   feature): every name is a zero-cost re-export of the `std` type. The only
//!   exception is [`UnsafeCell`], a `#[repr(transparent)]` newtype whose
//!   [`UnsafeCell::with`] / [`UnsafeCell::with_mut`] closures compile to the raw
//!   pointer access they wrap — the closure API exists so the checked build can
//!   observe the access.
//! * **Checked builds** (`--cfg xmap_check` or the `model-check` cargo feature):
//!   the same names resolve to shims in [`shim`] that, *when executing inside a
//!   [`model`] run*, yield to a cooperative deterministic scheduler before every
//!   shared-memory operation and feed per-location vector clocks so the checker can
//!   exhaustively explore thread interleavings and report data races. Outside a
//!   model run the shims fall back to plain `std` behaviour, so a unified build
//!   (`cargo test --workspace` with `crates/check` in the graph) runs production
//!   code unchanged.
//!
//! The contract for code written against the facade:
//!
//! 1. import `AtomicU64` / `AtomicUsize` / `Mutex` / `UnsafeCell` / `Ordering` /
//!    `Arc` from `crate::sync` (or `xmap_engine::sync` from other crates);
//! 2. busy-wait loops must call [`hint::spin_loop`] or [`thread::yield_now`] each
//!    iteration — the model maps both to "block until another thread writes", which
//!    is what makes spin loops finite under exhaustive exploration;
//! 3. cross-thread data handoff through raw memory goes through [`UnsafeCell`]'s
//!    closures so the checker's race detector sees the access.
//!
//! See `DESIGN.md` ("Checked concurrency") for the full model and its exploration
//! bounds, and [`seeded`] for the mutation hooks that prove the checker sharp.

/// Memory-ordering tokens are shared with `std`; the checked build interprets them
/// for its happens-before tracking instead of handing them to the hardware.
pub use std::sync::atomic::Ordering;
/// `Arc` is never instrumented: the checker trusts `Arc`'s own synchronization and
/// verifies the protocols *around* it (a retired-but-pinned epoch shows up as a race
/// on the slot cell or as an invariant panic, not as an `Arc` misuse).
pub use std::sync::Arc;

#[cfg(any(xmap_check, feature = "model-check"))]
pub mod model;
#[cfg(any(xmap_check, feature = "model-check"))]
mod rt;
#[cfg(any(xmap_check, feature = "model-check"))]
pub mod seeded;
#[cfg(any(xmap_check, feature = "model-check"))]
mod shim;

#[cfg(any(xmap_check, feature = "model-check"))]
pub use shim::{hint, thread, AtomicU64, AtomicUsize, Mutex, MutexGuard, UnsafeCell};

#[cfg(not(any(xmap_check, feature = "model-check")))]
mod facade_std {
    pub use std::sync::atomic::{AtomicU64, AtomicUsize};
    pub use std::sync::{Mutex, MutexGuard};

    /// Thread entry points of the facade. Plain `std::thread` in normal builds.
    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }

    /// Spin-wait hints of the facade. Plain `std::hint` in normal builds.
    pub mod hint {
        pub use std::hint::spin_loop;
    }

    /// A `std::cell::UnsafeCell` with the closure-based access API the checked build
    /// instruments. In normal builds both accessors are a raw pointer handed straight
    /// to the closure.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Calls `f` with a shared raw pointer to the contents.
        ///
        /// # Safety contract
        /// As with `std::cell::UnsafeCell::get`, the caller must guarantee the
        /// protocol makes the access race-free; the checked build verifies exactly
        /// that guarantee.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Calls `f` with an exclusive raw pointer to the contents (same safety
        /// contract as [`UnsafeCell::with`], for writes).
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(not(any(xmap_check, feature = "model-check")))]
pub use facade_std::{hint, thread, AtomicU64, AtomicUsize, Mutex, MutexGuard, UnsafeCell};
