//! Deterministic hash partitioning.
//!
//! The X-Map Spark implementation distributes items and users across executors by key
//! (Figure 4's components exchange keyed RDDs). [`Partitioner`] reproduces that unit of
//! distribution: a key is mapped to one of `p` partitions by a stable hash, so the same
//! key always lands on the same partition regardless of the number of workers processing
//! it. The cluster simulator consumes per-partition workloads produced this way.

use std::hash::{Hash, Hasher};

/// Hash partitioner over `p` partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    partitions: usize,
}

impl Partitioner {
    /// Creates a partitioner with `partitions` buckets (at least 1).
    pub fn new(partitions: usize) -> Self {
        Partitioner {
            partitions: partitions.max(1),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition a key belongs to.
    pub fn partition_of<K: Hash>(&self, key: &K) -> usize {
        // FNV-1a over the key's std hash output: cheap, stable within a process run, and
        // well mixed for small integer keys (user/item ids).
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let h = hasher.finish();
        let mut x = h ^ 0xcbf2_9ce4_8422_2325;
        x = x.wrapping_mul(0x1000_0000_01b3);
        x ^= x >> 33;
        (x % self.partitions as u64) as usize
    }

    /// Groups items into their partitions, returning `partitions` vectors of items.
    pub fn split_by_key<T, K: Hash>(
        &self,
        items: impl IntoIterator<Item = T>,
        key: impl Fn(&T) -> K,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.partitions).map(|_| Vec::new()).collect();
        for item in items {
            let p = self.partition_of(&key(&item));
            out[p].push(item);
        }
        out
    }

    /// Sizes of the partitions produced for the given keys (useful for load modelling
    /// without materialising the partitions).
    pub fn partition_sizes<K: Hash>(&self, keys: impl IntoIterator<Item = K>) -> Vec<usize> {
        let mut sizes = vec![0usize; self.partitions];
        for k in keys {
            sizes[self.partition_of(&k)] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_assignment_is_stable() {
        let p = Partitioner::new(8);
        for key in 0u32..100 {
            assert_eq!(p.partition_of(&key), p.partition_of(&key));
            assert!(p.partition_of(&key) < 8);
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let p = Partitioner::new(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition_of(&42u64), 0);
    }

    #[test]
    fn split_by_key_preserves_all_items() {
        let p = Partitioner::new(4);
        let items: Vec<u32> = (0..100).collect();
        let parts = p.split_by_key(items.clone(), |x| *x);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|v| v.len()).sum();
        assert_eq!(total, 100);
        // every item is in the partition its key hashes to
        for (idx, part) in parts.iter().enumerate() {
            for item in part {
                assert_eq!(p.partition_of(item), idx);
            }
        }
    }

    #[test]
    fn load_is_roughly_balanced_for_many_keys() {
        let p = Partitioner::new(10);
        let sizes = p.partition_sizes(0u32..10_000);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(min > 0, "no partition should be empty with 10k keys");
        assert!(
            (max as f64) / (min as f64) < 1.5,
            "partitions too imbalanced: {sizes:?}"
        );
    }

    #[test]
    fn partition_sizes_match_split() {
        let p = Partitioner::new(5);
        let keys: Vec<u64> = (0..500).map(|x| x * 7 + 3).collect();
        let sizes = p.partition_sizes(keys.iter().copied());
        let split = p.split_by_key(keys, |x| *x);
        for (s, part) in sizes.iter().zip(&split) {
            assert_eq!(*s, part.len());
        }
    }

    proptest! {
        /// Every key maps to a valid partition and the mapping is deterministic.
        #[test]
        fn valid_and_deterministic(keys in proptest::collection::vec(any::<u64>(), 1..200), parts in 1usize..32) {
            let p = Partitioner::new(parts);
            for k in &keys {
                let a = p.partition_of(k);
                prop_assert!(a < parts);
                prop_assert_eq!(a, p.partition_of(k));
            }
        }
    }
}
