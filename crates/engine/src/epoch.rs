//! Epoch-published snapshots with wait-free readers.
//!
//! Serving a model while absorbing rating deltas needs a publication discipline:
//! readers must always see a *complete, internally consistent* model version (an
//! **epoch**), never a half-applied update, and they must never block on the writer.
//! [`EpochHandle`] provides exactly that primitive:
//!
//! * the writer builds the next snapshot entirely off to the side, then publishes it
//!   with a single atomic pointer swing ([`EpochHandle::publish`]);
//! * readers ([`EpochHandle::load`]) take a reference-counted handle to the current
//!   snapshot without ever taking a lock — the fast path is two atomic RMWs and an
//!   `Arc` clone, and a retry only happens if a publish lands inside that window;
//! * the previous epoch is **retired** (its `Arc` dropped by the handle) as soon as
//!   the readers that were in flight at publication time drain, so at most two epochs
//!   are ever kept alive by the handle itself. Readers that cloned the old `Arc` keep
//!   their snapshot alive until they drop it — retirement never invalidates a read.
//!
//! The implementation is a double-buffered slot pair plus a packed
//! `AtomicU64` of `(epoch << 1) | slot`. Publication alternates slots; the
//! reader-count on each slot is the drain barrier. All cross-thread handshakes use
//! `SeqCst` because the reader's `increment readers → re-check current` and the
//! writer's `swing current → wait for readers` form a store/load (Dekker-style)
//! pattern that weaker orderings do not make safe.
//!
//! The protocol is written against the [`crate::sync`] facade, so the xmap-check
//! model checker can exhaustively explore its interleavings; the load-bearing
//! orderings route through [`crate::sync::seeded`] hooks in checked builds so the
//! mutation-gate tests can prove each one necessary (see `DESIGN.md`, "Checked
//! concurrency").

use std::sync::PoisonError;

use crate::sync::{hint, thread, Arc, AtomicU64, AtomicUsize, Mutex, Ordering, UnsafeCell};

#[cfg(any(xmap_check, feature = "model-check"))]
use crate::sync::seeded::{self, Site};

/// Ordering of the publisher's `current` swing. `Release` is the minimum the
/// protocol needs (the swing publishes the slot's value); `SeqCst` additionally
/// closes the Dekker window against the reader's pin. Seeded mutation:
/// [`crate::sync::seeded::Mutation::PublishStoreRelaxed`].
#[inline]
fn publish_store_ordering() -> Ordering {
    #[cfg(any(xmap_check, feature = "model-check"))]
    {
        seeded::ordering(Site::PublishStore, Ordering::SeqCst)
    }
    #[cfg(not(any(xmap_check, feature = "model-check")))]
    {
        Ordering::SeqCst
    }
}

/// Ordering of the reader's pin-path loads of `current` (both the initial load and
/// the revalidation). `Acquire` is the minimum (synchronizes with the publish
/// swing); `SeqCst` closes the Dekker window. Seeded mutation:
/// [`crate::sync::seeded::Mutation::PinLoadRelaxed`].
#[inline]
fn pin_load_ordering() -> Ordering {
    #[cfg(any(xmap_check, feature = "model-check"))]
    {
        seeded::ordering(Site::PinLoad, Ordering::SeqCst)
    }
    #[cfg(not(any(xmap_check, feature = "model-check")))]
    {
        Ordering::SeqCst
    }
}

/// Ordering of the publisher's drain load of a slot's reader count. `Acquire` is
/// load-bearing: it synchronizes with the last reader's `Release` unpin, ordering
/// that reader's value clone before the publisher's retire write. Seeded mutation:
/// [`crate::sync::seeded::Mutation::DrainLoadRelaxed`].
#[inline]
fn drain_load_ordering() -> Ordering {
    #[cfg(any(xmap_check, feature = "model-check"))]
    {
        seeded::ordering(Site::DrainLoad, Ordering::SeqCst)
    }
    #[cfg(not(any(xmap_check, feature = "model-check")))]
    {
        Ordering::SeqCst
    }
}

/// Whether the reader revalidates `current` after pinning (always, outside the
/// [`crate::sync::seeded::Mutation::SkipRevalidate`] mutant).
#[inline]
fn revalidate_enabled() -> bool {
    #[cfg(any(xmap_check, feature = "model-check"))]
    {
        !seeded::skip_revalidate()
    }
    #[cfg(not(any(xmap_check, feature = "model-check")))]
    {
        true
    }
}

/// One snapshot slot: a reader count guarding an optional published value.
struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot {
            readers: AtomicUsize::new(0),
            value: UnsafeCell::new(None),
        }
    }
}

/// An atomically swappable, epoch-counted snapshot handle.
///
/// See the [module docs](self) for the publication contract. `T` is the immutable
/// snapshot type (e.g. a model epoch); the handle stores `Arc<T>` so readers share
/// the snapshot structurally.
pub struct EpochHandle<T> {
    slots: [Slot<T>; 2],
    /// `(epoch << 1) | slot_index` — one load gives readers both the version number
    /// and where to find it.
    current: AtomicU64,
    /// Serializes publishers. Readers never touch this.
    publish_lock: Mutex<()>,
}

// SAFETY: the only interior mutability is the per-slot `Option<Arc<T>>`, which is
// written exclusively by the publisher *after* the slot's reader count has drained to
// zero and *before* `current` points at the slot (SeqCst handshake below), and read
// only by readers that successfully validated `current` while holding a nonzero
// reader count. `T` itself is only shared, never mutated, hence the `Sync` bound.
unsafe impl<T: Send + Sync> Send for EpochHandle<T> {}
unsafe impl<T: Send + Sync> Sync for EpochHandle<T> {}

impl<T> EpochHandle<T> {
    /// Creates a handle publishing `value` as the given initial epoch.
    pub fn new(value: Arc<T>, epoch: u64) -> Self {
        let handle = EpochHandle {
            slots: [Slot::empty(), Slot::empty()],
            current: AtomicU64::new(epoch << 1),
            publish_lock: Mutex::new(()),
        };
        // No readers can exist yet; slot 0 is the initial current slot.
        handle.slots[0]
            .value
            .with_mut(|p| unsafe { *p = Some(value) });
        handle
    }

    /// The current epoch number. Monotonically increasing across publishes.
    pub fn epoch(&self) -> u64 {
        self.current.load(Ordering::SeqCst) >> 1
    }

    /// Takes a wait-free snapshot: returns the current epoch number and a shared
    /// handle to its value. Never blocks on a publisher; a retry loop iteration only
    /// occurs if a publish lands between the epoch load and the validation re-load,
    /// and each retry observes a strictly newer epoch.
    pub fn load(&self) -> (u64, Arc<T>) {
        loop {
            let packed = self.current.load(pin_load_ordering());
            let slot = &self.slots[(packed & 1) as usize];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            // Re-validate: if `current` still names this slot, the publisher's drain
            // loop is now obliged to wait for us (it re-reads the count after swinging
            // `current`), so the value cannot be retired under our feet.
            if !revalidate_enabled() || self.current.load(pin_load_ordering()) == packed {
                // SAFETY: validation succeeded while our reader count pins the slot,
                // so the publisher cannot overwrite or retire it until we decrement.
                let value = slot
                    .value
                    .with(|p| unsafe { (*p).clone() })
                    .expect("current slot always holds a published value"); // lint: panic
                slot.readers.fetch_sub(1, Ordering::Release);
                return (packed >> 1, value);
            }
            slot.readers.fetch_sub(1, Ordering::Release);
        }
    }

    /// Publishes `value` as the next epoch and returns its epoch number.
    ///
    /// Build-aside → swap → drain → retire: the caller constructs `value` entirely
    /// before this call; the swap is one atomic store; the previous epoch's slot is
    /// drained of in-flight readers and its `Arc` dropped before returning, so the
    /// handle itself keeps only the new epoch alive. Publishers are serialized by an
    /// internal lock; readers are never blocked.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let _guard = self
            .publish_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let packed = self.current.load(Ordering::SeqCst);
        let old_ix = (packed & 1) as usize;
        let new_ix = old_ix ^ 1;
        let new_epoch = (packed >> 1) + 1;

        // The target slot was retired by the previous publish; any count here is a
        // reader that raced `load` and is about to fail validation and retry.
        self.drain(new_ix);
        // SAFETY: the slot is not current (readers validating `current` land on the
        // other slot) and its stragglers have drained, so we have exclusive access.
        self.slots[new_ix]
            .value
            .with_mut(|p| unsafe { *p = Some(value) });

        self.current
            .store((new_epoch << 1) | new_ix as u64, publish_store_ordering());

        // Retire the previous epoch: wait for readers that validated against it to
        // finish cloning, then drop the handle's reference. Readers holding clones
        // keep the snapshot alive independently.
        self.drain(old_ix);
        // SAFETY: `current` no longer names this slot and its readers have drained.
        self.slots[old_ix].value.with_mut(|p| unsafe { *p = None });

        new_epoch
    }

    /// Spins until the slot's reader count reaches zero. Reader critical sections are
    /// a handful of instructions (validate + `Arc` clone), so this is short. Under
    /// the model checker the spin hints park the publisher until a reader writes.
    fn drain(&self, slot: usize) {
        let mut spins = 0u32;
        while self.slots[slot].readers.load(drain_load_ordering()) != 0 {
            spins += 1;
            if spins > 64 {
                thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
    }
}

impl<T> std::fmt::Debug for EpochHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochHandle")
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_initial_epoch_and_value() {
        let handle = EpochHandle::new(Arc::new(41u64), 1);
        assert_eq!(handle.epoch(), 1);
        let (epoch, value) = handle.load();
        assert_eq!(epoch, 1);
        assert_eq!(*value, 41);
    }

    #[test]
    fn publish_advances_epoch_and_readers_see_latest() {
        let handle = EpochHandle::new(Arc::new(0u64), 0);
        for i in 1..=10u64 {
            let epoch = handle.publish(Arc::new(i));
            assert_eq!(epoch, i);
            let (e, v) = handle.load();
            assert_eq!(e, i);
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn old_epoch_is_retired_once_published_over() {
        let initial = Arc::new(7u64);
        let handle = EpochHandle::new(Arc::clone(&initial), 0);
        let (_, held) = handle.load();
        assert_eq!(Arc::strong_count(&initial), 3, "ours + handle + reader");
        handle.publish(Arc::new(8));
        // The handle dropped its reference at publish time; only our two clones
        // keep epoch 0 alive now.
        assert_eq!(Arc::strong_count(&initial), 2, "handle retired its copy");
        drop(held);
        assert_eq!(Arc::strong_count(&initial), 1);
        let (_, v) = handle.load();
        assert_eq!(*v, 8);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_or_stale_pairs() {
        // The value encodes its own epoch; any read where they disagree would mean a
        // torn or misattributed snapshot.
        let handle = Arc::new(EpochHandle::new(Arc::new(0u64), 0));
        let publishes = 500u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    loop {
                        let (epoch, value) = handle.load();
                        assert_eq!(epoch, *value, "epoch/value pair torn");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        last_epoch = epoch;
                        if epoch == publishes {
                            break;
                        }
                    }
                });
            }
            for i in 1..=publishes {
                handle.publish(Arc::new(i));
            }
        });
        assert_eq!(handle.epoch(), publishes);
    }

    #[test]
    fn epochs_are_monotonic_under_serialized_publishers() {
        let handle = Arc::new(EpochHandle::new(Arc::new(0u64), 0));
        let per_thread = 100u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let before = handle.epoch();
                        let published = handle.publish(Arc::new(0));
                        assert!(published > before);
                    }
                });
            }
        });
        assert_eq!(handle.epoch(), 4 * per_thread);
    }
}
