//! The binary codec: little-endian, length-prefixed, bounds-checked.
//!
//! [`Encoder`] appends primitives to a growable buffer; [`Decoder`] reads them back
//! with every access bounds-checked, reporting damage as [`StoreError::Corrupt`] at
//! an *absolute* file offset (the decoder carries the base offset of its window).
//! [`Codec`] ties the two together; fitted pieces implement it next to their own
//! definitions.
//!
//! Floats are encoded as raw IEEE-754 bits ([`f64::to_bits`]), so a decode is
//! bit-identical to the encoded value — the property the recovery gate asserts.

use crate::StoreError;

/// A type with a binary encoding: `enc` must be deterministic (canonical byte
/// stream for equal values) and `dec(enc(x)) == x` bit-exactly.
pub trait Codec: Sized {
    /// Appends the canonical encoding of `self`.
    fn enc(&self, e: &mut Encoder);
    /// Decodes one value, consuming exactly the bytes `enc` produced.
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError>;
}

/// Append-only byte sink for the canonical encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked reader over an encoded byte window.
///
/// `base` is the absolute file offset of the window's first byte, so every
/// [`StoreError::Corrupt`] the decoder reports points into the *file*, not the
/// window.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Decoder<'a> {
    /// A decoder whose window starts at file offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder::with_base(buf, 0)
    }

    /// A decoder over a window that starts at absolute file offset `base`.
    pub fn with_base(buf: &'a [u8], base: u64) -> Self {
        Decoder { buf, pos: 0, base }
    }

    /// The absolute file offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Bytes left in the window.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A [`StoreError::Corrupt`] at the current position.
    pub fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::corrupt(self.offset(), detail)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, StoreError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to the host `usize`.
    pub fn take_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds the host usize")))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn take_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n, "raw bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, StoreError> {
        let len = self.take_len(1, "string")?;
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("string body is not valid UTF-8"))
    }

    /// Reads a collection length prefix and sanity-checks it against the bytes that
    /// remain (each element needs at least `min_elem_bytes`), so corrupt lengths are
    /// refused before any allocation is sized from them.
    pub fn take_len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, StoreError> {
        let len = self.take_usize()?;
        let floor = min_elem_bytes.max(1);
        if len > self.remaining() / floor + 1 {
            return Err(self.corrupt(format!(
                "{what} length {len} is impossible: only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Asserts the window was fully consumed — trailing garbage is corruption.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes after decode", self.remaining())));
        }
        Ok(())
    }
}

/// Round-trips one value through the codec (encode, then decode a fresh window).
/// Convenience for tests and for journal payload framing.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.enc(&mut e);
    e.into_bytes()
}

/// Decodes one value from a standalone window starting at absolute offset `base`,
/// requiring full consumption.
pub fn decode_exact<T: Codec>(bytes: &[u8], base: u64) -> Result<T, StoreError> {
    let mut d = Decoder::with_base(bytes, base);
    let value = T::dec(&mut d)?;
    d.finish()?;
    Ok(value)
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Codec for $ty {
            fn enc(&self, e: &mut Encoder) {
                e.$put(*self);
            }
            fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
                d.$take()
            }
        }
    };
}

int_codec!(u8, put_u8, take_u8);
int_codec!(u16, put_u16, take_u16);
int_codec!(u32, put_u32, take_u32);
int_codec!(u64, put_u64, take_u64);
int_codec!(usize, put_usize, take_usize);
int_codec!(f64, put_f64, take_f64);

impl Codec for bool {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(u8::from(*self));
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(d.corrupt(format!("invalid bool tag {tag}"))),
        }
    }
}

impl Codec for String {
    fn enc(&self, e: &mut Encoder) {
        e.put_str(self);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        d.take_str()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn enc(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(d)?)),
            tag => Err(d.corrupt(format!("invalid Option tag {tag}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn enc(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let len = d.take_len(1, "vec")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::dec(d)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn enc(&self, e: &mut Encoder) {
        self.0.enc(e);
        self.1.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn enc(&self, e: &mut Encoder) {
        self.0.enc(e);
        self.1.enc(e);
        self.2.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok((A::dec(d)?, B::dec(d)?, C::dec(d)?))
    }
}

impl<T: Codec> Codec for std::sync::Arc<T> {
    fn enc(&self, e: &mut Encoder) {
        T::enc(self, e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(std::sync::Arc::new(T::dec(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_exact(&bytes, 0).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip((7u32, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY] {
            let bytes = encode_to_vec(&v);
            let back: f64 = decode_exact(&bytes, 0).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_input_is_corrupt_never_panics() {
        let value = (vec![1u64, 2, 3], String::from("tail"), Some(9u32));
        let bytes = encode_to_vec(&value);
        for cut in 0..bytes.len() {
            let err = decode_exact::<(Vec<u64>, String, Option<u32>)>(&bytes[..cut], 0)
                .expect_err("truncation must fail");
            assert!(
                matches!(err, StoreError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = encode_to_vec(&5u32);
        bytes.push(0);
        let err = decode_exact::<u32>(&bytes, 0).expect_err("trailing byte");
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }

    #[test]
    fn hostile_vec_length_is_refused_before_allocation() {
        let mut e = Encoder::new();
        e.put_usize(u32::MAX as usize);
        let bytes = e.into_bytes();
        let err = decode_exact::<Vec<u64>>(&bytes, 0).expect_err("hostile length");
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }

    #[test]
    fn corrupt_offsets_are_absolute() {
        let err = decode_exact::<u32>(&[], 1000).expect_err("empty window");
        match err {
            StoreError::Corrupt { offset, .. } => assert_eq!(offset, 1000),
            other => panic!("expected Corrupt, got {other}"),
        }
    }
}
