//! Atomic, checksummed model snapshots.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic      "XMAPSNAP"              (8 bytes)
//! offset 8   version    u16 = FORMAT_VERSION    (2 bytes)
//! offset 10  payload_len u64                    (8 bytes)
//! offset 18  payload    Codec encoding          (payload_len bytes)
//! offset 18+payload_len  crc  u32 over bytes [0, 18+payload_len)
//! ```
//!
//! Writes are crash-atomic: the bytes go to a sibling `*.tmp` file which is fsynced
//! and then renamed over the live name (the parent directory is fsynced too), so a
//! reader never observes a half-written snapshot. Any truncation or byte flip —
//! anywhere in the file, footer included — fails the load with
//! [`StoreError::Corrupt`]; a version stamp newer than [`FORMAT_VERSION`] is refused
//! rather than misread.

use crate::codec::{Codec, Decoder};
use crate::crc::crc32;
use crate::{StoreError, FORMAT_VERSION};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Leading magic of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"XMAPSNAP";

/// Header bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 2 + 8;

/// Atomic snapshot reader/writer (see the module docs for the byte layout).
pub struct Snapshot;

impl Snapshot {
    /// Serializes `value` and atomically replaces whatever is at `path`
    /// (write-temp → fsync → rename → fsync dir).
    pub fn write<T: Codec>(path: &Path, value: &T) -> Result<(), StoreError> {
        let mut body = Vec::with_capacity(HEADER_LEN + 64);
        body.extend_from_slice(&SNAPSHOT_MAGIC);
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let payload = crate::codec::encode_to_vec(value);
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(&payload);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());

        let tmp = tmp_path(path);
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| StoreError::io(&tmp, "create snapshot temp file", e))?;
            file.write_all(&body)
                .map_err(|e| StoreError::io(&tmp, "write snapshot bytes", e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(&tmp, "fsync snapshot temp file", e))?;
        }
        fs::rename(&tmp, path)
            .map_err(|e| StoreError::io(path, "rename snapshot into place", e))?;
        sync_parent_dir(path)?;
        Ok(())
    }

    /// Loads and verifies a snapshot: magic, version (forward-refusal), framing and
    /// the whole-file CRC are checked before a single payload byte is decoded.
    pub fn load<T: Codec>(path: &Path) -> Result<T, StoreError> {
        let bytes = fs::read(path).map_err(|e| StoreError::io(path, "read snapshot file", e))?;
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::corrupt(
                bytes.len() as u64,
                format!(
                    "snapshot truncated: {} bytes, need at least {}",
                    bytes.len(),
                    HEADER_LEN + 4
                ),
            ));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(StoreError::corrupt(0, "bad snapshot magic"));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::corrupt(
                8,
                format!(
                    "unsupported snapshot format version {version} (this build reads \
                     version {FORMAT_VERSION})"
                ),
            ));
        }
        let payload_len = u64::from_le_bytes([
            bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17],
        ]);
        let expected_total = (HEADER_LEN as u64)
            .checked_add(payload_len)
            .and_then(|v| v.checked_add(4));
        if expected_total != Some(bytes.len() as u64) {
            return Err(StoreError::corrupt(
                10,
                format!(
                    "snapshot framing mismatch: header says {payload_len} payload bytes, \
                     file has {} total",
                    bytes.len()
                ),
            ));
        }
        let crc_at = bytes.len() - 4;
        let stored = u32::from_le_bytes([
            bytes[crc_at],
            bytes[crc_at + 1],
            bytes[crc_at + 2],
            bytes[crc_at + 3],
        ]);
        let computed = crc32(&bytes[..crc_at]);
        if stored != computed {
            return Err(StoreError::corrupt(
                crc_at as u64,
                format!(
                    "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            ));
        }
        let mut d = Decoder::with_base(&bytes[HEADER_LEN..crc_at], HEADER_LEN as u64);
        let value = T::dec(&mut d)?;
        d.finish()?;
        Ok(value)
    }
}

/// The sibling temp name the atomic write stages into.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path`, making the rename itself durable.
fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let handle =
            File::open(dir).map_err(|e| StoreError::io(dir, "open snapshot directory", e))?;
        handle
            .sync_all()
            .map_err(|e| StoreError::io(dir, "fsync snapshot directory", e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xmap-store-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("model.snap");
        let value = (vec![1u64, 2, 3], String::from("payload"), Some(0.5f64));
        Snapshot::write(&path, &value).unwrap();
        let back: (Vec<u64>, String, Option<f64>) = Snapshot::load(&path).unwrap();
        assert_eq!(back, value);

        let next = (vec![9u64], String::from("v2"), None);
        Snapshot::write(&path, &next).unwrap();
        let back: (Vec<u64>, String, Option<f64>) = Snapshot::load(&path).unwrap();
        assert_eq!(back, next);
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io() {
        let dir = temp_dir("missing");
        let err = Snapshot::load::<u64>(&dir.join("absent.snap")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_format_version_is_refused() {
        let dir = temp_dir("version");
        let path = dir.join("model.snap");
        Snapshot::write(&path, &7u64).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = FORMAT_VERSION as u8 + 1; // bump the version stamp
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes()); // keep the CRC valid
        fs::write(&path, &bytes).unwrap();
        let err = Snapshot::load::<u64>(&path).unwrap_err();
        match err {
            StoreError::Corrupt { detail, .. } => {
                assert!(
                    detail.contains("unsupported snapshot format version"),
                    "{detail}"
                )
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_corrupt() {
        let dir = temp_dir("truncate");
        let path = dir.join("model.snap");
        let value = (vec![3u64, 1, 4, 1, 5], String::from("pi"));
        Snapshot::write(&path, &value).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = Snapshot::load::<(Vec<u64>, String)>(&path)
                .expect_err("truncated snapshot must fail");
            assert!(
                matches!(err, StoreError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_flip_is_corrupt() {
        let dir = temp_dir("flip");
        let path = dir.join("model.snap");
        let value = (vec![3u64, 1, 4], String::from("pi"));
        Snapshot::write(&path, &value).unwrap();
        let bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            fs::write(&path, &flipped).unwrap();
            let err = Snapshot::load::<(Vec<u64>, String)>(&path)
                .expect_err("flipped snapshot must fail");
            assert!(matches!(err, StoreError::Corrupt { .. }), "flip {i}: {err}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
