//! The append-only delta journal.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic      "XMAPJRNL"              (8 bytes)
//! offset 8   version    u16 = FORMAT_VERSION    (2 bytes)
//! offset 10  base_epoch u64                     (8 bytes)
//! offset 18  header_crc u32 over bytes [0, 18)  (4 bytes)
//! offset 22  records…
//! ```
//!
//! Each record frame is:
//!
//! ```text
//! len        u32   payload bytes
//! epoch      u64   epoch stamp (must be previous epoch + 1; first = base_epoch + 1)
//! payload    len bytes, Codec encoding
//! record_crc u32 over (len | epoch | payload)
//! ```
//!
//! Open semantics distinguish two kinds of damage:
//!
//! * a **torn tail** — the file ends inside the last record frame (the crash-mid-
//!   append case fsync-before-publish makes unobservable *after* a successful
//!   append, but possible when the process dies during one). The torn record was
//!   never acknowledged, so it is discarded and the file truncated back to the last
//!   whole record;
//! * **corruption** — a *complete* record whose CRC does not match, a non-contiguous
//!   epoch stamp, or a damaged header: reported as [`StoreError::Corrupt`] at the
//!   offending byte offset, never silently skipped.
//!
//! Every [`Journal::append`] fsyncs before returning, so an acknowledged record
//! survives a crash (write-ahead discipline: the caller appends *before* publishing
//! the epoch the record produces).

use crate::codec::{decode_exact, encode_to_vec, Codec};
use crate::crc::crc32;
use crate::{StoreError, FORMAT_VERSION};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Leading magic of a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"XMAPJRNL";

/// Header bytes: magic + version + base epoch + header CRC.
const HEADER_LEN: u64 = 8 + 2 + 8 + 4;

/// Fixed frame bytes around a record payload: len + epoch before, CRC after.
const FRAME_PREFIX: u64 = 4 + 8;
const FRAME_SUFFIX: u64 = 4;

/// One record recovered from a journal: its epoch stamp, the absolute byte offset
/// of its frame, and the decoded payload.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord<T> {
    /// The epoch this record's replay publishes.
    pub epoch: u64,
    /// Absolute byte offset of the record frame within the journal file.
    pub offset: u64,
    /// The decoded payload.
    pub value: T,
}

/// A [`StoreError::Corrupt`] whose detail names the offending file. Per-shard
/// stores open many journals; a bare offset cannot say *which* file is damaged,
/// so every corruption this module reports is attributed to its path.
fn corrupt_in(path: &Path, offset: u64, detail: impl std::fmt::Display) -> StoreError {
    StoreError::corrupt(offset, format!("{}: {detail}", path.display()))
}

/// Attributes an error bubbling out of a payload decode to the journal file it
/// came from (IO errors already carry their path and pass through unchanged).
fn attribute(path: &Path, err: StoreError) -> StoreError {
    match err {
        StoreError::Corrupt { offset, detail } => corrupt_in(path, offset, detail),
        other => other,
    }
}

/// An open append-only journal (see the module docs for framing and semantics).
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Byte offset one past the last valid record (where the next append lands).
    end: u64,
    base_epoch: u64,
    last_epoch: u64,
}

impl Journal {
    /// Creates (or truncates) a journal whose records will continue from
    /// `base_epoch` — i.e. the first appended record must be stamped
    /// `base_epoch + 1`. The header is fsynced before this returns.
    pub fn create(path: &Path, base_epoch: u64) -> Result<Journal, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "create journal file", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&base_epoch.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| StoreError::io(path, "write journal header", e))?;
        file.sync_all()
            .map_err(|e| StoreError::io(path, "fsync journal header", e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            end: HEADER_LEN,
            base_epoch,
            last_epoch: base_epoch,
        })
    }

    /// Opens an existing journal, verifying the header and every record frame
    /// (CRC + contiguous epoch stamps), decoding each payload as `T`.
    ///
    /// A torn tail record is discarded and the file truncated back to the last
    /// whole record; any *complete* but damaged record fails with
    /// [`StoreError::Corrupt`]. Returns the journal positioned for appending plus
    /// the surviving records in append order.
    pub fn open<T: Codec>(path: &Path) -> Result<(Journal, Vec<JournalRecord<T>>), StoreError> {
        let bytes =
            std::fs::read(path).map_err(|e| StoreError::io(path, "read journal file", e))?;
        if (bytes.len() as u64) < HEADER_LEN {
            return Err(corrupt_in(
                path,
                bytes.len() as u64,
                format!(
                    "journal header truncated: {} bytes, need {HEADER_LEN}",
                    bytes.len()
                ),
            ));
        }
        if bytes[..8] != JOURNAL_MAGIC {
            return Err(corrupt_in(path, 0, "bad journal magic"));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(corrupt_in(
                path,
                8,
                format!(
                    "unsupported journal format version {version} (this build reads \
                     version {FORMAT_VERSION})"
                ),
            ));
        }
        let stored_header_crc = u32::from_le_bytes([bytes[18], bytes[19], bytes[20], bytes[21]]);
        let computed_header_crc = crc32(&bytes[..18]);
        if stored_header_crc != computed_header_crc {
            return Err(corrupt_in(path, 18, "journal header checksum mismatch"));
        }
        let base_epoch = u64::from_le_bytes([
            bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17],
        ]);

        let mut records = Vec::new();
        let mut last_epoch = base_epoch;
        let mut pos = HEADER_LEN as usize;
        let mut torn = false;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if (remaining as u64) < FRAME_PREFIX {
                torn = true; // file ends inside a frame prefix
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as u64;
            let frame = FRAME_PREFIX + len + FRAME_SUFFIX;
            if (remaining as u64) < frame {
                torn = true; // file ends inside this record's payload or CRC
                break;
            }
            let body_end = pos + (FRAME_PREFIX + len) as usize;
            let stored_crc = u32::from_le_bytes([
                bytes[body_end],
                bytes[body_end + 1],
                bytes[body_end + 2],
                bytes[body_end + 3],
            ]);
            let computed_crc = crc32(&bytes[pos..body_end]);
            if stored_crc != computed_crc {
                return Err(corrupt_in(
                    path,
                    pos as u64,
                    format!(
                        "journal record checksum mismatch: stored {stored_crc:#010x}, \
                         computed {computed_crc:#010x}"
                    ),
                ));
            }
            let epoch = u64::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
                bytes[pos + 8],
                bytes[pos + 9],
                bytes[pos + 10],
                bytes[pos + 11],
            ]);
            if epoch != last_epoch + 1 {
                return Err(corrupt_in(
                    path,
                    pos as u64 + 4,
                    format!(
                        "journal epoch stamp {epoch} is not contiguous (previous was \
                         {last_epoch})"
                    ),
                ));
            }
            let payload = &bytes[pos + FRAME_PREFIX as usize..body_end];
            let value: T = decode_exact(payload, (pos as u64) + FRAME_PREFIX)
                .map_err(|e| attribute(path, e))?;
            records.push(JournalRecord {
                epoch,
                offset: pos as u64,
                value,
            });
            last_epoch = epoch;
            pos += frame as usize;
        }

        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open journal for append", e))?;
        if torn {
            // The torn record was never acknowledged; drop it so the next append
            // starts on a whole-record boundary.
            file.set_len(pos as u64)
                .map_err(|e| StoreError::io(path, "truncate torn journal tail", e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(path, "fsync truncated journal", e))?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                end: pos as u64,
                base_epoch,
                last_epoch,
            },
            records,
        ))
    }

    /// Appends one record stamped `epoch` (which must be `last_epoch() + 1`) and
    /// fsyncs it, returning the absolute byte offset of the record frame. On any
    /// error nothing is acknowledged — the caller must not publish the epoch.
    pub fn append<T: Codec>(&mut self, epoch: u64, value: &T) -> Result<u64, StoreError> {
        if epoch != self.last_epoch + 1 {
            return Err(corrupt_in(
                &self.path,
                self.end,
                format!(
                    "refusing non-contiguous append: epoch {epoch} after {}",
                    self.last_epoch
                ),
            ));
        }
        let payload = encode_to_vec(value);
        let mut frame = Vec::with_capacity((FRAME_PREFIX + FRAME_SUFFIX) as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&epoch.to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());

        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| StoreError::io(&self.path, "seek to journal end", e))?;
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&self.path, "append journal record", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, "fsync journal record", e))?;
        let offset = self.end;
        self.end += frame.len() as u64;
        self.last_epoch = epoch;
        Ok(offset)
    }

    /// Truncates the journal back to an empty record section and restamps its base
    /// epoch — the compaction step after the folded snapshot has been written.
    pub fn reset(&mut self, base_epoch: u64) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io(&self.path, "truncate journal for compaction", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&base_epoch.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(&self.path, "seek to journal start", e))?;
        self.file
            .write_all(&header)
            .map_err(|e| StoreError::io(&self.path, "rewrite journal header", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, "fsync compacted journal", e))?;
        self.end = HEADER_LEN;
        self.base_epoch = base_epoch;
        self.last_epoch = base_epoch;
        Ok(())
    }

    /// The epoch the snapshot this journal extends was taken at; the first record
    /// is stamped `base_epoch() + 1`.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The epoch stamp of the most recent record (`base_epoch()` when empty).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Total valid bytes: header plus every acknowledged record frame.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xmap-store-jrnl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    type Rec = (Vec<u32>, String);

    fn sample_records() -> Vec<Rec> {
        vec![
            (vec![1, 2, 3], String::from("first")),
            (vec![], String::from("second")),
            (vec![42; 17], String::from("third")),
        ]
    }

    fn write_journal(path: &Path) -> Vec<Rec> {
        let records = sample_records();
        let mut journal = Journal::create(path, 1).unwrap();
        for (i, rec) in records.iter().enumerate() {
            let offset = journal.append(2 + i as u64, rec).unwrap();
            assert!(offset >= HEADER_LEN);
        }
        records
    }

    #[test]
    fn roundtrip_append_open() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("deltas.journal");
        let written = write_journal(&path);
        let (journal, records) = Journal::open::<Rec>(&path).unwrap();
        assert_eq!(journal.base_epoch(), 1);
        assert_eq!(journal.last_epoch(), 4);
        assert_eq!(records.len(), written.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.epoch, 2 + i as u64);
            assert_eq!(rec.value, written[i]);
        }
        // Offsets are strictly increasing and start right after the header.
        assert_eq!(records[0].offset, HEADER_LEN);
        assert!(records.windows(2).all(|w| w[0].offset < w[1].offset));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_continues_after_reopen() {
        let dir = temp_dir("reopen");
        let path = dir.join("deltas.journal");
        write_journal(&path);
        let (mut journal, _) = Journal::open::<Rec>(&path).unwrap();
        journal
            .append(5, &(vec![9u32], String::from("late")))
            .unwrap();
        let (journal, records) = Journal::open::<Rec>(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(journal.last_epoch(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_contiguous_append_is_refused() {
        let dir = temp_dir("gap");
        let path = dir.join("deltas.journal");
        let mut journal = Journal::create(&path, 7).unwrap();
        let err = journal.append(9, &(vec![0u32], String::new())).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        journal.append(8, &(vec![0u32], String::new())).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_restamps_and_truncates() {
        let dir = temp_dir("reset");
        let path = dir.join("deltas.journal");
        write_journal(&path);
        let (mut journal, _) = Journal::open::<Rec>(&path).unwrap();
        journal.reset(4).unwrap();
        assert_eq!(journal.len_bytes(), HEADER_LEN);
        journal
            .append(5, &(vec![1u32], String::from("post")))
            .unwrap();
        let (journal, records) = Journal::open::<Rec>(&path).unwrap();
        assert_eq!(journal.base_epoch(), 4);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_yields_a_prefix_or_corrupt() {
        let dir = temp_dir("truncate");
        let path = dir.join("deltas.journal");
        let written = write_journal(&path);
        let bytes = fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            match Journal::open::<Rec>(&path) {
                Ok((_, records)) => {
                    // A cut inside the record section tears the tail: the surviving
                    // records must be an exact prefix of what was written.
                    assert!(
                        cut >= HEADER_LEN as usize,
                        "cut {cut} inside header must fail"
                    );
                    assert!(records.len() <= written.len());
                    for (rec, orig) in records.iter().zip(&written) {
                        assert_eq!(&rec.value, orig, "cut {cut}: diverged record");
                    }
                }
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_flip_yields_a_prefix_or_corrupt() {
        let dir = temp_dir("flip");
        let path = dir.join("deltas.journal");
        let written = write_journal(&path);
        let bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x80;
            fs::write(&path, &flipped).unwrap();
            match Journal::open::<Rec>(&path) {
                Ok((_, records)) => {
                    // A flip in the *last* record's length prefix can turn it into a
                    // torn tail (frame now extends past EOF) — that record is
                    // discarded. Whatever survives must be an unflipped prefix.
                    assert!(records.len() < written.len(), "flip {i} silently accepted");
                    for (rec, orig) in records.iter().zip(&written) {
                        assert_eq!(&rec.value, orig, "flip {i}: diverged record");
                    }
                }
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("flip {i}: unexpected error {other}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
