//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum under every
//! snapshot footer and journal record frame. Table-driven, table built at compile
//! time; no external crate needed.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const CRC_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state: [`Crc32::update`] over any number of chunks, then
/// [`Crc32::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh CRC state (all-ones preset, per the IEEE convention).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum (state xor-out).
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check value: CRC("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut streaming = Crc32::new();
        for chunk in data.chunks(7) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finish(), crc32(data));
    }

    #[test]
    fn detects_single_byte_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let reference = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x5A;
            assert_ne!(crc32(&flipped), reference, "flip at byte {i} undetected");
        }
    }
}
