//! # xmap-store — durable model state
//!
//! The persistence layer under the ROADMAP's service track: a versioned,
//! length-prefixed, checksummed binary codec ([`Codec`] / [`Encoder`] / [`Decoder`]),
//! an atomically written model snapshot ([`Snapshot`]) and an append-only delta
//! journal ([`Journal`]) with per-record CRCs and monotone epoch stamps.
//!
//! The crate is a dependency-free leaf: it defines the *format* and the file
//! plumbing, while every fitted piece (rating matrix, graph arena, X-Sim table,
//! replacement table, kNN pools, privacy ledger) implements [`Codec`] next to its
//! own definition so private fields stay private.
//!
//! ## Durability contract
//!
//! * Snapshots are written write-temp → fsync → rename, so a crash never leaves a
//!   half-written snapshot under the live name, and carry a whole-file footer CRC.
//! * Journal records are CRC-framed and epoch-stamped; a torn tail record (the file
//!   ends mid-record) is discarded on open, while a *complete* record that fails its
//!   CRC — or a non-contiguous epoch stamp — is reported as [`StoreError::Corrupt`]
//!   with the byte offset of the damage.
//! * Every decode path is bounds-checked: corrupt bytes produce
//!   [`StoreError::Corrupt`], never a panic.
//! * The on-disk format version is explicit ([`FORMAT_VERSION`]); files written by a
//!   newer format are refused rather than misread.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
mod crc;
mod journal;
mod snapshot;

pub use codec::{decode_exact, encode_to_vec, Codec, Decoder, Encoder};
pub use crc::{crc32, Crc32};
pub use journal::{Journal, JournalRecord, JOURNAL_MAGIC};
pub use snapshot::{Snapshot, SNAPSHOT_MAGIC};

use std::fmt;
use std::path::{Path, PathBuf};

/// The on-disk format version this build reads and writes. Files stamped with a
/// *newer* version are refused ([`StoreError::Corrupt`] naming the version) instead
/// of being decoded with the wrong layout.
pub const FORMAT_VERSION: u16 = 1;

/// Errors of the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path and the operation that failed.
    Io {
        /// The file (or directory) the operation touched.
        path: PathBuf,
        /// What the store was doing when the failure happened.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The bytes on disk are not a valid snapshot/journal: checksum mismatch,
    /// truncation, an unknown format version, or an out-of-range field.
    Corrupt {
        /// Absolute byte offset (within the file) of the damage.
        offset: u64,
        /// What was wrong at that offset.
        detail: String,
    },
}

impl StoreError {
    /// Builds an [`StoreError::Io`] with the conventional `path`/`context` shape.
    pub fn io(path: &Path, context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            context: context.into(),
            source,
        }
    }

    /// Builds an [`StoreError::Corrupt`] at an absolute file offset.
    pub fn corrupt(offset: u64, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path,
                context,
                source,
            } => {
                write!(f, "io error at {}: {context}: {source}", path.display())
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "corrupt store data at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}
