//! Homogeneous setting (§6.5, Table 2 / Table 3): partition a genre-tagged single-domain
//! trace into two sub-domains by genre, then run X-Map across the sub-domains and compare
//! it with a from-scratch ALS matrix-factorisation recommender.
//!
//! ```text
//! cargo run --release --example movielens_split
//! ```

use xmap_suite::cf::als::{AlsConfig, AlsModel};
use xmap_suite::dataset::genres::{GenreDatasetConfig, GenreTaggedDataset};
use xmap_suite::dataset::split::random_holdout;
use xmap_suite::prelude::*;

fn main() {
    // 1. Generate the MovieLens-like genre-tagged trace and partition it into two
    //    sub-domains following the paper's Table 2 procedure.
    let dataset = GenreTaggedDataset::generate(GenreDatasetConfig::default());
    let (matrix, partition) = dataset.partition();
    let (d1, d2) = partition.domain_sizes();
    println!("genre partition: D1 = {d1} movies, D2 = {d2} movies");
    println!(
        "D1 genres (by count): {}",
        genre_names(&partition.d1_genres)
    );
    println!(
        "D2 genres (by count): {}",
        genre_names(&partition.d2_genres)
    );

    // 2. Hide 20% of the ratings; keep only the hidden D2 ratings as the test set.
    let (train, test_all) = random_holdout(&matrix, 0.2, 11);
    let test: Vec<Rating> = test_all
        .into_iter()
        .filter(|r| matrix.item_domain(r.item) == DomainId::TARGET)
        .collect();
    println!("\npredicting {} hidden D2 ratings\n", test.len());

    // 3. NX-Map and X-Map across the two sub-domains.
    for mode in [XMapMode::NxMapItemBased, XMapMode::XMapItemBased] {
        let model = XMapModel::fit(
            &train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                mode,
                k: 20,
                ..XMapConfig::default()
            },
        )
        .expect("both sub-domains are populated");
        let outcome = evaluate_predictions(&test, |u, i| model.predict(u, i));
        println!("{:<12} MAE {:.4}", model.label(), outcome.mae);
    }

    // 4. The ALS baseline (standing in for Spark MLlib-ALS) over the aggregated ratings.
    let als = AlsModel::train(
        &train,
        AlsConfig {
            factors: 8,
            iterations: 10,
            ..AlsConfig::default()
        },
    )
    .expect("training matrix is non-empty");
    let outcome = evaluate_predictions(&test, |u, i| als.predict(u, i));
    println!("{:<12} MAE {:.4}", "MLlib-ALS", outcome.mae);
}

fn genre_names(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&g| xmap_suite::dataset::genres::MOVIELENS_GENRES[g].0)
        .collect::<Vec<_>>()
        .join(", ")
}
