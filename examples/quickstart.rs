//! Quickstart: fit X-Map on a small synthetic two-domain trace and produce cold-start
//! recommendations for a user who has never rated anything in the target domain.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xmap_suite::prelude::*;

fn main() {
    // 1. Generate a synthetic Amazon-like trace: movies (SOURCE) and books (TARGET) with
    //    a population of overlapping "straddler" users connecting the two domains.
    let dataset = CrossDomainDataset::generate(CrossDomainConfig::default());
    println!(
        "dataset: {} users, {} items, {} ratings ({} straddlers)",
        dataset.matrix.n_users(),
        dataset.matrix.n_items(),
        dataset.matrix.n_ratings(),
        dataset.overlap_users.len()
    );

    // 2. Fit the non-private, item-based X-Map variant (NX-Map-ib).
    let config = XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: 25,
        ..XMapConfig::default()
    };
    let model = XMapModel::fit(&dataset.matrix, DomainId::SOURCE, DomainId::TARGET, config)
        .expect("the synthetic trace always contains both domains");

    println!("fitted {}", model.label());
    println!(
        "  bridge items: {}, heterogeneous pairs: {} direct / {} after X-Sim extension",
        model.stats().n_bridge_items,
        model.stats().n_standard_hetero_pairs,
        model.stats().n_xsim_hetero_pairs
    );
    for stage in &model.stats().stage_durations {
        println!("  stage {:<12} {:?}", stage.name, stage.duration);
    }

    // 3. Pick a user who rated only movies (cold-start in books) and inspect the AlterEgo
    //    that X-Map builds for them in the book domain.
    let user = dataset.source_only_users[0];
    let alterego = model.alterego(user);
    println!(
        "\nuser {user} rated {} movies and 0 books; AlterEgo maps {} of those ratings into books",
        dataset.matrix.user_degree(user),
        alterego.n_mapped
    );

    // 4. Produce top-5 book recommendations for that user.
    println!("top-5 book recommendations for {user}:");
    for (item, score) in model.recommend(user, 5) {
        println!("  {item}  predicted rating {score:.2}");
    }
}
