//! The paper's motivating example (Figure 1(a)): "what you might like to read after
//! watching Interstellar".
//!
//! Alice has rated only movies. Interstellar and The Forever War share no rater, so every
//! classical similarity between them is zero — yet the meta-path
//! `Interstellar —Bob→ Inception —Cecilia→ The Forever War` connects them, and X-Map uses
//! it to recommend the book to Alice.
//!
//! ```text
//! cargo run --release --example interstellar
//! ```

use xmap_suite::cf::similarity::{item_similarity, SimilarityMetric};
use xmap_suite::dataset::toy::{items, users, ToyScenario};
use xmap_suite::prelude::*;

fn main() {
    let toy = ToyScenario::build();

    // The standard similarity between Interstellar and The Forever War is exactly zero:
    // no user rated both.
    let direct = item_similarity(
        &toy.matrix,
        items::INTERSTELLAR,
        items::THE_FOREVER_WAR,
        SimilarityMetric::AdjustedCosine,
    );
    println!(
        "adjusted-cosine similarity(Interstellar, The Forever War) = {direct} (no common rater)"
    );

    // Fit NX-Map on the toy scenario.
    let model = XMapModel::fit(
        &toy.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 2,
            ..XMapConfig::default()
        },
    )
    .expect("toy scenario contains both domains");

    // X-Sim connects the two items through the meta-path over Inception.
    for entry in model.xsim().candidates(items::INTERSTELLAR) {
        println!(
            "X-Sim(Interstellar, {}) = {:+.3}  (from {} meta-path(s))",
            toy.item_name(entry.item),
            entry.similarity,
            entry.n_paths
        );
    }

    // Alice's AlterEgo and her book recommendations.
    let alterego = model.alterego(users::ALICE);
    println!("\nAlice's AlterEgo in the book domain:");
    for (item, rating, _) in &alterego.profile {
        println!(
            "  {:<16} {:.1} (mapped from her movie ratings)",
            toy.item_name(*item),
            rating
        );
    }

    println!("\nbook recommendations for Alice:");
    for (item, score) in model.recommend(users::ALICE, 3) {
        println!("  {:<16} predicted rating {score:.2}", toy.item_name(item));
    }
}
