//! Differentially private heterogeneous recommendation: the privacy / quality trade-off.
//!
//! Fits the private X-Map-ib variant at several privacy levels (ε for the PRS AlterEgo
//! mechanism, ε′ for PNSA/PNCF) and reports the cold-start MAE for each, alongside the
//! non-private NX-Map-ib reference — a miniature of the paper's Figures 6–7.
//!
//! ```text
//! cargo run --release --example private_alterego
//! ```

use xmap_suite::prelude::*;

fn main() {
    let dataset = CrossDomainDataset::generate(CrossDomainConfig::default());
    // Hide the book profiles of 30% of the straddlers; predict them from their movies.
    let split = CrossDomainSplit::build(&dataset, DomainId::TARGET, SplitConfig::default());
    println!(
        "training on {} ratings, predicting {} hidden book ratings of {} cold-start users\n",
        split.train.n_ratings(),
        split.test.len(),
        split.test_users.len()
    );

    // Non-private reference.
    let reference = fit_and_score(
        &split,
        XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 25,
            ..XMapConfig::default()
        },
    );
    println!("{:<28} MAE {:.4}", "NX-Map-ib (non-private)", reference);

    // Private variants at increasing privacy budgets (larger ε = weaker privacy).
    for (eps, eps_prime) in [(0.1, 0.1), (0.3, 0.8), (0.6, 0.8), (1.0, 1.0)] {
        let config = XMapConfig {
            mode: XMapMode::XMapItemBased,
            k: 25,
            privacy: PrivacyConfig {
                epsilon: eps,
                epsilon_prime: eps_prime,
                rho: 0.05,
            },
            ..XMapConfig::default()
        };
        let mae = fit_and_score(&split, config);
        println!(
            "{:<28} MAE {:.4}",
            format!("X-Map-ib (ε={eps}, ε'={eps_prime})"),
            mae
        );
    }

    println!("\nsmaller ε / ε' = stronger privacy = noisier AlterEgos and predictions;");
    println!("as the budget grows X-Map converges back to the non-private NX-Map quality.");
}

fn fit_and_score(split: &CrossDomainSplit, config: XMapConfig) -> f64 {
    let model = XMapModel::fit(&split.train, DomainId::SOURCE, DomainId::TARGET, config)
        .expect("training split contains both domains");
    evaluate_predictions(&split.test, |u, i| model.predict(u, i)).mae
}
