//! Cross-crate integration tests: the full X-Map pipeline driven through the public API,
//! exercising dataset generation, splitting, all four recommender variants and the
//! competitor baselines together — the same path the examples and the `figures` harness
//! use.

use xmap_suite::cf::baselines::{ItemAverage, RatingPredictor, RemoteUser};
use xmap_suite::cf::UserKnnConfig;
use xmap_suite::prelude::*;

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig {
        n_source_items: 60,
        n_target_items: 80,
        n_source_only_users: 40,
        n_target_only_users: 40,
        n_overlap_users: 35,
        ratings_per_user: 12,
        latent_dim: 4,
        noise: 0.3,
        seed: 3,
        popularity_skew: 0.0,
    })
}

fn cold_start_split(ds: &CrossDomainDataset) -> CrossDomainSplit {
    CrossDomainSplit::build(ds, DomainId::TARGET, SplitConfig::default())
}

#[test]
fn cold_start_pipeline_beats_item_average_and_produces_valid_output() {
    let ds = dataset();
    let split = cold_start_split(&ds);
    assert!(!split.test.is_empty());

    let model = XMapModel::fit(
        &split.train,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 50,
            ..XMapConfig::default()
        },
    )
    .unwrap();

    let xmap = evaluate_predictions(&split.test, |u, i| model.predict(u, i));
    let baseline = ItemAverage::new(&split.train);
    let item_avg = evaluate_predictions(&split.test, |u, i| baseline.predict(u, i));

    assert!(xmap.mae.is_finite());
    assert!(
        xmap.mae > 0.0 && xmap.mae < 4.0,
        "MAE must stay within the rating span"
    );
    assert!(
        xmap.mae <= item_avg.mae + 0.05,
        "NX-Map ({:.3}) should be at least competitive with ItemAverage ({:.3})",
        xmap.mae,
        item_avg.mae
    );

    // every recommendation for a cold-start user is a target-domain item they never rated
    for &user in split.test_users.iter().take(5) {
        for (item, score) in model.recommend(user, 5) {
            assert_eq!(split.train.item_domain(item), DomainId::TARGET);
            assert_eq!(ds.matrix.item_domain(item), DomainId::TARGET);
            assert!((1.0..=5.0).contains(&score));
            assert_eq!(split.train.rating(user, item), None);
        }
    }
}

#[test]
fn all_four_variants_and_remoteuser_are_evaluated_on_the_same_split() {
    let ds = dataset();
    let split = cold_start_split(&ds);
    let mut results = Vec::new();
    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        let model = XMapModel::fit(
            &split.train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                mode,
                k: 50,
                ..XMapConfig::default()
            },
        )
        .unwrap();
        let outcome = evaluate_predictions(&split.test, |u, i| model.predict(u, i));
        assert!(
            outcome.mae.is_finite(),
            "{mode:?} produced a non-finite MAE"
        );
        results.push((mode.label(), outcome.mae));
    }
    let remote = RemoteUser::new(&split.train, DomainId::SOURCE, UserKnnConfig::default()).unwrap();
    let remote_mae = evaluate_predictions(&split.test, |u, i| remote.predict(u, i)).mae;
    results.push(("RemoteUser", remote_mae));

    // the non-private item-based variant should be the best or near-best of the group
    let nx_ib = results.iter().find(|(l, _)| *l == "NX-MAP-IB").unwrap().1;
    let best = results
        .iter()
        .map(|(_, m)| *m)
        .fold(f64::INFINITY, f64::min);
    assert!(
        nx_ib <= best + 0.1,
        "NX-Map-ib should be within 0.1 MAE of the best system: {results:?}"
    );
}

#[test]
fn alterego_profiles_live_entirely_in_the_target_domain() {
    let ds = dataset();
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            k: 50,
            ..XMapConfig::default()
        },
    )
    .unwrap();
    for &user in ds.source_only_users.iter().take(10) {
        let alter = model.alterego(user);
        assert!(
            !alter.is_empty(),
            "user {user} should receive a non-empty AlterEgo"
        );
        for &(item, value, _) in &alter.profile {
            assert_eq!(ds.matrix.item_domain(item), DomainId::TARGET);
            assert!((1.0..=5.0).contains(&value));
        }
        // a source-only user's AlterEgo is fully mapped (no genuine target ratings)
        assert_eq!(alter.n_mapped, alter.profile.len());
    }
}

#[test]
fn increasing_the_privacy_budget_recovers_non_private_quality() {
    let ds = dataset();
    let split = cold_start_split(&ds);
    let mae_for = |eps: f64, eps_prime: f64| {
        let model = XMapModel::fit(
            &split.train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                mode: XMapMode::XMapItemBased,
                k: 50,
                privacy: PrivacyConfig {
                    epsilon: eps,
                    epsilon_prime: eps_prime,
                    rho: 0.05,
                },
                ..XMapConfig::default()
            },
        )
        .unwrap();
        evaluate_predictions(&split.test, |u, i| model.predict(u, i)).mae
    };
    let non_private = {
        let model = XMapModel::fit(
            &split.train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                mode: XMapMode::NxMapItemBased,
                k: 50,
                ..XMapConfig::default()
            },
        )
        .unwrap();
        evaluate_predictions(&split.test, |u, i| model.predict(u, i)).mae
    };
    let strict = mae_for(0.05, 0.05);
    let loose = mae_for(50.0, 50.0);
    // a huge budget should be close to the non-private quality; a tiny budget should not
    // be meaningfully better than it
    assert!(
        (loose - non_private).abs() < 0.25,
        "ε→∞ should approach NX-Map: {loose:.3} vs {non_private:.3}"
    );
    assert!(
        strict >= non_private - 0.05,
        "ε→0 should not beat the non-private model: {strict:.3} vs {non_private:.3}"
    );
}

#[test]
fn csv_round_trip_feeds_the_pipeline() {
    // export the synthetic trace to CSV, re-import it, and fit the pipeline on the
    // re-imported matrix — the external-data path documented in the README.
    let ds = dataset();
    let mut buffer = Vec::new();
    xmap_suite::dataset::io::write_ratings_csv(&ds.matrix, &mut buffer).unwrap();
    let restored = xmap_suite::dataset::io::read_ratings_csv(buffer.as_slice()).unwrap();
    assert_eq!(restored.n_ratings(), ds.matrix.n_ratings());
    let model = XMapModel::fit(
        &restored,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            k: 10,
            ..XMapConfig::default()
        },
    )
    .unwrap();
    let user = ds.overlap_users[0];
    let recs = model.recommend(user, 3);
    assert!(!recs.is_empty());
}

#[test]
fn toy_scenario_reproduces_the_papers_motivating_example() {
    use xmap_suite::dataset::toy::{items, users};
    let toy = ToyScenario::build();
    let model = XMapModel::fit(
        &toy.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            k: 2,
            ..XMapConfig::default()
        },
    )
    .unwrap();
    // Interstellar reaches The Forever War only through meta-paths.
    assert!(model
        .xsim()
        .candidates(items::INTERSTELLAR)
        .iter()
        .any(|e| e.item == items::THE_FOREVER_WAR));
    // Alice (movies only) receives book recommendations.
    let recs = model.recommend(users::ALICE, 3);
    assert!(!recs.is_empty());
    for (item, _) in recs {
        assert_eq!(toy.matrix.item_domain(item), DomainId::TARGET);
    }
}
