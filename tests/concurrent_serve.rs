//! The serve-while-updating gate: wait-free snapshot readers against epoch-published
//! models during delta ingestion.
//!
//! Two contracts from the epoch-publication design (DESIGN.md):
//!
//! * **Interleave-transparency** — for *any* randomized schedule (random delta
//!   contents, random split into ingest batches, 1/2/8 readers), every interleaved
//!   read is bit-equal to the same read against the serialized schedule (a fresh fit
//!   plus the same deltas applied one at a time) at the read's observed epoch.
//!   Interleaving may change *which* epoch a read sees, never the bits an epoch
//!   answers with — no read ever observes a torn (half-applied) state.
//! * **Retirement** — a published epoch stays alive exactly as long as a reader holds
//!   it: snapshots taken before a delta keep answering their own epoch's bits
//!   undisturbed, and the epoch's memory is released once the last snapshot drops.
//!
//! The wall-clock side of the contract (reader p99 during ingestion vs idle) is gated
//! in `crates/bench/benches/concurrent_serve.rs`.

use proptest::prelude::*;
use std::sync::Arc;
use xmap_suite::prelude::*;

const READER_COUNTS: [usize; 3] = [1, 2, 8];
const TOP_N: usize = 3;

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

fn config() -> XMapConfig {
    XMapConfig {
        mode: XMapMode::NxMapItemBased,
        k: 8,
        ..Default::default()
    }
}

fn fit(ds: &CrossDomainDataset) -> XMapModel {
    XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config())
        .expect("the small trace contains both domains")
}

type AnswerBits = Vec<(ItemId, u64)>;

fn bits(answer: &[(ItemId, f64)]) -> AnswerBits {
    answer.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

/// `tables[e - 1][q]`: query `q`'s bit-exact answer at epoch `e` under the serialized
/// schedule — fresh fit (epoch 1), then one `apply_delta` per batch.
fn serialized_reference(
    ds: &CrossDomainDataset,
    updates: &[RatingDelta],
    requests: &[xmap_suite::cf::knn::Profile],
) -> Vec<Vec<AnswerBits>> {
    let model = fit(ds);
    let answers = |m: &XMapModel| -> Vec<AnswerBits> {
        let (_, snap) = m.snapshot();
        requests
            .iter()
            .map(|p| bits(&snap.recommend_for_profile(p, TOP_N)))
            .collect()
    };
    let mut tables = vec![answers(&model)];
    for delta in updates {
        model
            .apply_delta(delta)
            .expect("the serialized reference applies every delta");
        tables.push(answers(&model));
    }
    tables
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized schedules: arbitrary rating events over the existing catalogue,
    /// arbitrarily split into 1–3 ingest batches, served at 1/2/8 readers.
    #[test]
    fn randomized_interleave_reads_match_the_serialized_schedule_at_their_epoch(
        raw_events in collection::vec(
            (0usize..70, 0usize..90, 1u32..=5),
            1..12,
        ),
        n_deltas in 1usize..=3,
    ) {
        let ds = dataset();
        let n_users = ds.matrix.n_users();
        let n_items = ds.matrix.n_items();
        // Split the generated events round-robin into the ingest batches, with
        // strictly increasing fresh timesteps so the serialized ordering is unique.
        let mut updates = vec![RatingDelta::new(); n_deltas];
        for (ix, &(u, i, v)) in raw_events.iter().enumerate() {
            updates[ix % n_deltas].push_timed(
                (u % n_users) as u32,
                (i % n_items) as u32,
                v as f64,
                5000 + ix as u32,
            );
        }

        let probe = fit(&ds);
        let requests: Vec<_> = ds
            .overlap_users
            .iter()
            .chain(ds.source_only_users.iter())
            .take(6)
            .map(|&u| probe.alterego(u).profile)
            .cycle()
            .take(24)
            .collect();
        let tables = serialized_reference(&ds, &updates, &requests);

        for readers in READER_COUNTS {
            let model = fit(&ds);
            let (reads, report) = model
                .serve_concurrent(&requests, TOP_N, readers, &updates)
                .expect("randomized deltas apply cleanly");
            prop_assert_eq!(reads.len(), requests.len());
            prop_assert_eq!(model.epoch(), 1 + n_deltas as u64);
            for (q, read) in reads.iter().enumerate() {
                prop_assert!(
                    (1..=1 + n_deltas as u64).contains(&read.epoch),
                    "{readers}r: read {} observed unpublished epoch {}", q, read.epoch
                );
                prop_assert_eq!(
                    bits(&read.recommendations),
                    tables[(read.epoch - 1) as usize][q].clone(),
                    "{}r: read {} tore away from its epoch {}", readers, q, read.epoch
                );
            }
            // The ingest worker published the serialized epoch sequence, in order.
            let published: Vec<u64> = report.ingests.iter().map(|i| i.epoch).collect();
            prop_assert_eq!(
                published,
                (2..=1 + n_deltas as u64).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn snapshots_survive_publication_and_epochs_retire_with_their_last_reader() {
    let ds = dataset();
    let model = fit(&ds);
    let (first_epoch, snap) = model.snapshot();
    assert_eq!(first_epoch, 1);
    let user = ds.overlap_users[0];
    let baseline = bits(&snap.recommend(user, TOP_N));
    let retired_probe = Arc::downgrade(&snap);

    // Publish three epochs while the old snapshot is live.
    for step in 0..3u32 {
        let mut delta = RatingDelta::new();
        delta.push_timed(
            user.0,
            ds.target_items()[step as usize].0,
            1.0 + step as f64,
            7000 + step,
        );
        let report = model.apply_delta(&delta).unwrap();
        assert_eq!(report.epoch, 2 + step as u64);
        // The live snapshot keeps answering epoch 1's bits — publication never
        // mutates or tears a held epoch.
        assert_eq!(bits(&snap.recommend(user, TOP_N)), baseline);
    }
    assert_eq!(model.epoch(), 4);
    assert!(
        retired_probe.upgrade().is_some(),
        "a held epoch must stay alive"
    );

    // Once the last reader lets go, the epoch is actually retired (its memory
    // released), while new snapshots serve the newest epoch.
    drop(snap);
    assert!(
        retired_probe.upgrade().is_none(),
        "epoch 1 must be retired once its last snapshot drops"
    );
    let (epoch, fresh) = model.snapshot();
    assert_eq!(epoch, 4);
    assert_eq!(
        bits(&fresh.recommend(user, TOP_N)),
        bits(&model.recommend(user, TOP_N)),
        "the fresh snapshot and the model must answer from the same epoch"
    );
}

#[test]
fn concurrent_serve_with_no_deltas_equals_plain_batch_serving() {
    let ds = dataset();
    let model = fit(&ds);
    let requests: Vec<_> = ds
        .overlap_users
        .iter()
        .take(8)
        .map(|&u| model.alterego(u).profile)
        .collect();
    let (reads, report) = model.serve_concurrent(&requests, TOP_N, 2, &[]).unwrap();
    assert!(report.ingests.is_empty());
    let (_, snap) = model.snapshot();
    for (read, profile) in reads.iter().zip(&requests) {
        assert_eq!(read.epoch, 1);
        assert_eq!(
            bits(&read.recommendations),
            bits(&snap.recommend_for_profile(profile, TOP_N))
        );
    }
}
