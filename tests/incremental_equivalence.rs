//! The incremental-equivalence gate: `XMapModel::apply_delta` must release exactly the
//! model a full `XMapModel::fit` on the updated matrix releases — **bit-identical**
//! graph arena, X-Sim table, replacement table, kNN pools, probe predictions,
//! recommendations and privacy ledger — in all four modes, at 1, 2 and 8 workers.
//!
//! The delta stage's own task bag (the `"delta"` ledger) is additionally asserted
//! identical across worker counts: its costs are data-derived, so the worker count
//! must never leak into the recorded incremental work.
//!
//! This is the end-to-end counterpart of the layer-local contracts:
//! `RatingMatrix::apply_delta` vs the full rebuild (xmap-cf property test),
//! `SimilarityGraph::apply_updates_serial` vs `build` (xmap-graph property test), and
//! the delta edge-case tests in `xmap_core::delta`.

use xmap_suite::prelude::*;

const GATE_WORKERS: [usize; 3] = [1, 2, 8];

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

fn config(mode: XMapMode, workers: usize) -> XMapConfig {
    XMapConfig {
        mode,
        k: 8,
        workers,
        ..Default::default()
    }
}

/// A delta exercising every edge shape at once: an update of an existing cell, a new
/// cell for an existing user, a brand-new user straddling both domains, and a
/// brand-new target item rated by old and new users.
fn gate_delta(ds: &CrossDomainDataset) -> RatingDelta {
    let new_user = ds.matrix.n_users() as u32;
    let new_item = ds.matrix.n_items() as u32;
    let source_item = ds.source_items()[0];
    let target_item = ds.target_items()[0];
    let updating_user = ds.overlap_users[0];
    let mut delta = RatingDelta::new();
    delta
        .declare_item(ItemId(new_item), DomainId::TARGET)
        .push_timed(updating_user.0, target_item.0, 1.0, 200)
        .push_timed(ds.overlap_users[1].0, source_item.0, 5.0, 201)
        .push_timed(new_user, source_item.0, 4.0, 202)
        .push_timed(new_user, target_item.0, 2.0, 203)
        .push_timed(new_user, new_item, 5.0, 204)
        .push_timed(updating_user.0, new_item, 3.0, 205);
    delta
}

/// Everything the gate compares between a delta-fitted and a freshly fitted model.
#[derive(Debug, PartialEq)]
struct ReleasedBits {
    replacements: Vec<(ItemId, ItemId)>,
    prediction_bits: Vec<u64>,
    recommendations: Vec<Vec<(ItemId, u64)>>,
    privacy_ledger: Vec<(String, u64)>,
}

fn released_bits(model: &XMapModel, users: &[UserId], items: &[ItemId]) -> ReleasedBits {
    let mut replacements: Vec<(ItemId, ItemId)> = model.replacements().iter().collect();
    replacements.sort();
    ReleasedBits {
        replacements,
        prediction_bits: users
            .iter()
            .flat_map(|&u| items.iter().map(move |&i| (u, i)).collect::<Vec<_>>())
            .map(|(u, i)| model.predict(u, i).to_bits())
            .collect(),
        recommendations: users
            .iter()
            .map(|&u| {
                model
                    .recommend(u, 5)
                    .into_iter()
                    .map(|(i, s)| (i, s.to_bits()))
                    .collect()
            })
            .collect(),
        privacy_ledger: model
            .privacy_budget()
            .map(|b| {
                b.ledger()
                    .iter()
                    .map(|e| (e.mechanism.clone(), e.epsilon.to_bits()))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

#[test]
fn delta_fit_equals_full_refit_in_all_four_modes_at_1_2_and_8_workers() {
    let ds = dataset();
    let delta = gate_delta(&ds);
    let updated = ds
        .matrix
        .apply_delta(delta.ratings(), delta.item_domains())
        .unwrap();
    let new_user = UserId(ds.matrix.n_users() as u32);
    let probe_users: Vec<UserId> = ds
        .overlap_users
        .iter()
        .copied()
        .take(5)
        .chain(ds.source_only_users.iter().copied().take(3))
        .chain([new_user])
        .collect();
    let probe_items: Vec<ItemId> = updated
        .items_in_domain(DomainId::TARGET)
        .into_iter()
        .take(12)
        .collect();

    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        let mut reference_costs: Option<Vec<f64>> = None;
        for workers in GATE_WORKERS {
            let incremental = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                config(mode, workers),
            )
            .unwrap();
            let report = incremental.apply_delta(&delta).unwrap();
            assert_eq!(report.n_delta_ratings, 6, "{mode:?}");
            assert!(report.n_rescored_pairs > 0, "{mode:?}");
            let refit = XMapModel::fit(
                &updated,
                DomainId::SOURCE,
                DomainId::TARGET,
                config(mode, workers),
            )
            .unwrap();

            // the internal artifacts, bit for bit
            assert_eq!(
                incremental.graph(),
                refit.graph(),
                "{mode:?}/{workers}w: graph arenas diverged"
            );
            assert_eq!(
                incremental.xsim(),
                refit.xsim(),
                "{mode:?}/{workers}w: X-Sim tables diverged"
            );
            // ... and the released surface
            let inc_bits = released_bits(&incremental, &probe_users, &probe_items);
            let ref_bits = released_bits(&refit, &probe_users, &probe_items);
            assert_eq!(
                inc_bits, ref_bits,
                "{mode:?}/{workers}w: released bits diverged"
            );

            // the delta ledger is data-derived: identical at every worker count
            let costs = incremental
                .delta_task_costs()
                .expect("apply_delta records its task bag");
            assert!(costs.iter().all(|&c| c.is_finite() && c >= 0.0));
            match &reference_costs {
                None => reference_costs = Some(costs),
                Some(expected) => {
                    assert_eq!(
                        &costs, expected,
                        "{mode:?}: {workers} workers changed the delta ledger"
                    );
                }
            }
        }
    }
}

#[test]
fn sequential_deltas_compose_to_the_same_model_as_one_refit() {
    // Two consecutive incremental batches must land on the same bits as a single
    // refit on the final matrix — state carried between deltas (the scored-pair
    // cache, spliced X-Sim rows, spliced pools) must not go stale.
    let ds = dataset();
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        config(XMapMode::NxMapItemBased, 2),
    )
    .unwrap();
    let first = gate_delta(&ds);
    model.apply_delta(&first).unwrap();
    let mut second = RatingDelta::new();
    second
        .push_timed(ds.overlap_users[2].0, ds.target_items()[1].0, 4.0, 300)
        .push_timed(ds.overlap_users[0].0, ds.target_items()[0].0, 5.0, 301);
    model.apply_delta(&second).unwrap();

    let updated = ds
        .matrix
        .apply_delta(first.ratings(), first.item_domains())
        .unwrap()
        .apply_delta(second.ratings(), second.item_domains())
        .unwrap();
    let refit = XMapModel::fit(
        &updated,
        DomainId::SOURCE,
        DomainId::TARGET,
        config(XMapMode::NxMapItemBased, 2),
    )
    .unwrap();
    assert_eq!(model.graph(), refit.graph());
    assert_eq!(model.xsim(), refit.xsim());
    let probe_users: Vec<UserId> = ds.overlap_users.iter().copied().take(6).collect();
    let probe_items: Vec<ItemId> = ds.target_items().into_iter().take(10).collect();
    assert_eq!(
        released_bits(&model, &probe_users, &probe_items),
        released_bits(&refit, &probe_users, &probe_items)
    );
}
