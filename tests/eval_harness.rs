//! Cross-crate integration tests of the engine-parallel evaluation harness: the
//! `EvalStage` contract (bit-identity with the serial reference at 1/2/8 workers, one
//! data-derived task bag in the `eval` ledger) driven through the public API, plus the
//! model-level sweep entry point.

use xmap_suite::engine::Dataflow;
use xmap_suite::eval::EVAL_STAGE_NAME;
use xmap_suite::prelude::*;

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig {
        n_source_items: 60,
        n_target_items: 80,
        n_source_only_users: 40,
        n_target_only_users: 40,
        n_overlap_users: 35,
        ratings_per_user: 12,
        latent_dim: 4,
        noise: 0.3,
        seed: 3,
        popularity_skew: 0.0,
    })
}

fn eval_batch(ds: &CrossDomainDataset, split: &CrossDomainSplit) -> EvalBatch {
    let ranking = ranking_cases_from_test(&split.test, 4.0);
    let catalogue = ds.target_items().len();
    EvalBatch::predictions(split.test.clone()).with_ranking(ranking, 5, catalogue)
}

#[test]
fn eval_stage_is_bit_identical_to_the_serial_protocol_at_1_2_and_8_workers() {
    let ds = dataset();
    let split = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
    let batch = eval_batch(&ds, &split);
    assert!(!batch.test.is_empty(), "split must hide some ratings");
    assert!(!batch.ranking.is_empty(), "split must yield ranking cases");

    let mut reference: Option<(EvalReport, Vec<f64>)> = None;
    for workers in [1usize, 2, 8] {
        let model = XMapModel::fit(
            &split.train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                k: 10,
                workers,
                ..Default::default()
            },
        )
        .unwrap();
        let report = model.evaluate_batch(batch.clone());

        // bit-identical to the fully serial protocol over the same fitted model
        let serial = evaluate_batch_serial(&model, &batch);
        assert!(
            report.bits_eq(&serial),
            "{workers} workers: stage diverged from serial\n  {report:?}\n  {serial:?}"
        );
        // and its error half to the historical evaluate_predictions loop
        let outcome = evaluate_predictions(&batch.test, |u, i| model.predict(u, i));
        assert_eq!(report.mae.to_bits(), outcome.mae.to_bits());
        assert_eq!(report.rmse.to_bits(), outcome.rmse.to_bits());
        assert_eq!(report.n_predictions, outcome.n);

        let costs = model.eval_task_costs().expect("eval records task costs");
        assert!(costs.iter().all(|c| *c >= 0.0));
        match &reference {
            None => reference = Some((report, costs)),
            Some((expected, expected_costs)) => {
                assert!(report.bits_eq(expected), "{workers} workers changed output");
                assert_eq!(&costs, expected_costs, "{workers} workers changed costs");
            }
        }
    }
}

#[test]
fn eval_stage_runs_on_a_standalone_dataflow_and_replaces_its_ledger() {
    let ds = dataset();
    let split = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
    let batch = eval_batch(&ds, &split);
    let model = XMapModel::fit(
        &split.train,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            k: 10,
            ..Default::default()
        },
    )
    .unwrap();

    // Any Dataflow can host the stage — evaluation is not tied to the model's runner.
    let flow = Dataflow::new(2, 8);
    let report = flow.run(&EvalStage::new(&model), batch.clone());
    assert!(report.bits_eq(&model.evaluate_batch(batch.clone())));
    let costs = flow.stage_costs(EVAL_STAGE_NAME).unwrap();
    assert_eq!(
        costs.len(),
        16,
        "8 prediction partitions + 8 ranking partitions"
    );
    let expected_total: f64 = batch.test.len() as f64
        + batch
            .ranking
            .iter()
            .map(|c| 1.0 + c.relevant.len() as f64)
            .sum::<f64>();
    assert!((costs.iter().sum::<f64>() - expected_total).abs() < 1e-9);

    // Repeated runs replace the ledger entry instead of growing it (sweep-point reuse).
    let smaller = EvalBatch::predictions(batch.test[..4].to_vec());
    let _ = flow.run(&EvalStage::new(&model), smaller);
    let costs = flow.stage_costs(EVAL_STAGE_NAME).unwrap();
    assert_eq!(costs.len(), 8, "prediction-only rerun holds one cost bag");
    assert!((costs.iter().sum::<f64>() - 4.0).abs() < 1e-9);
}

#[test]
fn model_sweep_visits_every_value_and_stays_deterministic() {
    let ds = dataset();
    let split = CrossDomainSplit::build(&ds, DomainId::TARGET, SplitConfig::default());
    let batch = eval_batch(&ds, &split);
    let spec = SweepSpec::new(SweepParam::K, vec![4.0, 10.0]).with_metric(SweepMetric::Mae);

    let mut reference = None;
    for workers in [1usize, 2] {
        let model = XMapModel::fit(
            &split.train,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                k: 10,
                workers,
                ..Default::default()
            },
        )
        .unwrap();
        let series = model.sweep(&spec, &batch).unwrap();
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[0].x, 4.0);
        assert_eq!(series.points[1].x, 10.0);
        for p in &series.points {
            assert!(p.y.is_finite(), "k={} gave non-finite MAE", p.x);
        }
        match &reference {
            None => reference = Some(series),
            Some(expected) => assert_eq!(&series, expected, "{workers} workers changed the sweep"),
        }
    }
}
