//! The durability gate: a model recovered from its snapshot + delta journal must be
//! **bit-identical** to the in-memory model that wrote them — graph arena, X-Sim
//! table, replacement table, probe predictions, recommendations and privacy ledger —
//! in all four modes, at 1, 2 and 8 workers. And no damaged byte on disk may ever
//! panic a recovery: truncating or flipping bytes at arbitrary offsets must either
//! recover a bit-identical *prefix* of the journaled history (a torn tail) or fail
//! with `XMapError::Corrupt`.
//!
//! This is the on-disk counterpart of the incremental-equivalence gate
//! (`tests/incremental_equivalence.rs`): `apply_delta` is bit-identical to a full
//! refit, recovery replays the journal through `apply_delta`, so recovery is
//! bit-identical to the live model by composition — this file checks the composition
//! end to end, through real files.

use std::path::{Path, PathBuf};
use xmap_suite::core::XMapError;
use xmap_suite::prelude::*;

const GATE_WORKERS: [usize; 3] = [1, 2, 8];

/// A scratch directory unique to this test process and `tag`, recreated empty.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmap_durability_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

fn config(mode: XMapMode, workers: usize) -> XMapConfig {
    XMapConfig {
        mode,
        k: 8,
        workers,
        ..Default::default()
    }
}

/// A delta exercising every edge shape: an updated cell, a new cell for an existing
/// user, a brand-new user straddling both domains, a brand-new target item.
fn first_delta(ds: &CrossDomainDataset) -> RatingDelta {
    let new_user = ds.matrix.n_users() as u32;
    let new_item = ds.matrix.n_items() as u32;
    let mut delta = RatingDelta::new();
    delta
        .declare_item(ItemId(new_item), DomainId::TARGET)
        .push_timed(ds.overlap_users[0].0, ds.target_items()[0].0, 1.0, 200)
        .push_timed(ds.overlap_users[1].0, ds.source_items()[0].0, 5.0, 201)
        .push_timed(new_user, ds.source_items()[0].0, 4.0, 202)
        .push_timed(new_user, new_item, 5.0, 203);
    delta
}

fn second_delta(ds: &CrossDomainDataset) -> RatingDelta {
    let mut delta = RatingDelta::new();
    delta
        .push_timed(ds.overlap_users[2].0, ds.target_items()[1].0, 4.0, 300)
        .push_timed(ds.overlap_users[0].0, ds.target_items()[0].0, 5.0, 301);
    delta
}

/// Everything the gate compares between the writing and the recovered model.
#[derive(Clone, Debug, PartialEq)]
struct ReleasedBits {
    epoch: u64,
    replacements: Vec<(ItemId, ItemId)>,
    prediction_bits: Vec<u64>,
    recommendations: Vec<Vec<(ItemId, u64)>>,
    privacy_ledger: Vec<(String, u64)>,
}

fn released_bits(model: &XMapModel, users: &[UserId], items: &[ItemId]) -> ReleasedBits {
    let mut replacements: Vec<(ItemId, ItemId)> = model.replacements().iter().collect();
    replacements.sort();
    ReleasedBits {
        epoch: model.epoch(),
        replacements,
        prediction_bits: users
            .iter()
            .flat_map(|&u| items.iter().map(move |&i| (u, i)).collect::<Vec<_>>())
            .map(|(u, i)| model.predict(u, i).to_bits())
            .collect(),
        recommendations: users
            .iter()
            .map(|&u| {
                model
                    .recommend(u, 5)
                    .into_iter()
                    .map(|(i, s)| (i, s.to_bits()))
                    .collect()
            })
            .collect(),
        privacy_ledger: model
            .privacy_budget()
            .map(|b| {
                b.ledger()
                    .iter()
                    .map(|e| (e.mechanism.clone(), e.epsilon.to_bits()))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

fn probes(ds: &CrossDomainDataset) -> (Vec<UserId>, Vec<ItemId>) {
    let new_user = UserId(ds.matrix.n_users() as u32);
    let users: Vec<UserId> = ds
        .overlap_users
        .iter()
        .copied()
        .take(4)
        .chain(ds.source_only_users.iter().copied().take(2))
        .chain([new_user])
        .collect();
    let items: Vec<ItemId> = ds.target_items().into_iter().take(10).collect();
    (users, items)
}

#[test]
fn recovery_is_bit_identical_in_all_four_modes_at_1_2_and_8_workers() {
    let ds = dataset();
    let (probe_users, probe_items) = probes(&ds);
    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        for workers in GATE_WORKERS {
            let dir = scratch_dir(&format!("gate_{mode:?}_{workers}"));
            let model = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                config(mode, workers),
            )
            .unwrap();
            assert_eq!(model.persist(&dir).unwrap(), 1, "{mode:?}/{workers}w");

            // With a store attached, every delta reports its write-ahead offset.
            let r1 = model.apply_delta(&first_delta(&ds)).unwrap();
            assert_eq!(r1.epoch, 2, "{mode:?}/{workers}w");
            assert!(r1.journal_offset.is_some(), "{mode:?}/{workers}w");
            let r2 = model.apply_delta(&second_delta(&ds)).unwrap();
            assert_eq!(r2.epoch, 3, "{mode:?}/{workers}w");
            assert!(
                r2.journal_offset.unwrap() > r1.journal_offset.unwrap(),
                "{mode:?}/{workers}w: journal offsets must grow"
            );

            let recovered = XMapModel::open(&dir).unwrap();
            assert_eq!(
                recovered.graph().as_ref(),
                model.graph().as_ref(),
                "{mode:?}/{workers}w: graph arenas diverged after recovery"
            );
            assert_eq!(
                recovered.xsim().as_ref(),
                model.xsim().as_ref(),
                "{mode:?}/{workers}w: X-Sim tables diverged after recovery"
            );
            assert_eq!(
                recovered.matrix().as_ref(),
                model.matrix().as_ref(),
                "{mode:?}/{workers}w: matrices diverged after recovery"
            );
            assert_eq!(
                released_bits(&recovered, &probe_users, &probe_items),
                released_bits(&model, &probe_users, &probe_items),
                "{mode:?}/{workers}w: released bits diverged after recovery"
            );

            // The recovered model keeps journaling: its next delta lands at epoch 4
            // on both sides and the bits stay equal.
            let d2 = second_delta(&ds);
            let live = model.apply_delta(&d2).unwrap();
            let rec = recovered.apply_delta(&d2).unwrap();
            assert_eq!(live.epoch, 4);
            assert_eq!(rec.epoch, 4);
            assert!(rec.journal_offset.is_some(), "{mode:?}/{workers}w");
            assert_eq!(
                released_bits(&recovered, &probe_users, &probe_items),
                released_bits(&model, &probe_users, &probe_items),
                "{mode:?}/{workers}w: diverged after post-recovery delta"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn compaction_shrinks_the_journal_and_preserves_the_bits() {
    let ds = dataset();
    let (probe_users, probe_items) = probes(&ds);
    let dir = scratch_dir("compact");
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        config(XMapMode::NxMapItemBased, 2),
    )
    .unwrap();
    assert_eq!(
        model.journal_len_bytes(),
        None,
        "no store attached before persist()"
    );
    model.persist(&dir).unwrap();
    model.apply_delta(&first_delta(&ds)).unwrap();
    let before = model.journal_len_bytes().unwrap();
    assert_eq!(model.compact().unwrap(), 2);
    let after = model.journal_len_bytes().unwrap();
    assert!(
        after < before,
        "compaction must shrink the journal ({before} -> {after} bytes)"
    );
    // Post-compaction deltas journal against the new base and recovery still lands
    // on the live bits.
    model.apply_delta(&second_delta(&ds)).unwrap();
    let recovered = XMapModel::open(&dir).unwrap();
    assert_eq!(
        released_bits(&recovered, &probe_users, &probe_items),
        released_bits(&model, &probe_users, &probe_items),
        "recovery after compaction diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_without_a_store_is_a_data_error_and_a_lost_journal_reopens_at_the_snapshot() {
    let ds = dataset();
    let (probe_users, probe_items) = probes(&ds);
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        config(XMapMode::NxMapItemBased, 2),
    )
    .unwrap();
    assert!(matches!(model.compact(), Err(XMapError::Data(_))));

    let dir = scratch_dir("lost_journal");
    model.persist(&dir).unwrap();
    let snapshot_bits = released_bits(&model, &probe_users, &probe_items);
    model.apply_delta(&first_delta(&ds)).unwrap();
    // Losing the journal file loses the deltas, not the snapshot: open() treats the
    // missing journal as empty, recreates it, and lands on the snapshot epoch.
    std::fs::remove_file(dir.join(xmap_suite::core::JOURNAL_FILE)).unwrap();
    let reopened = XMapModel::open(&dir).unwrap();
    assert_eq!(reopened.epoch(), 1);
    assert_eq!(
        released_bits(&reopened, &probe_users, &probe_items),
        snapshot_bits,
        "a lost journal must reopen exactly the snapshot"
    );
    // ... and the recreated journal accepts new deltas.
    let report = reopened.apply_delta(&first_delta(&ds)).unwrap();
    assert_eq!(report.epoch, 2);
    assert!(report.journal_offset.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Kill-at-arbitrary-byte: no truncation or byte flip may panic a recovery or hand
// back wrong bits — the outcome is always a bit-identical journaled *prefix* or
// `XMapError::Corrupt`. Runs on the toy scenario so each recovery attempt is cheap.
// ---------------------------------------------------------------------------------

/// The fitted toy fixture behind the corruption sweeps: pristine store files plus
/// the released bits of every legal journal prefix (epoch 1, 2 and 3).
struct CorruptionFixture {
    dir: PathBuf,
    prefix_bits: Vec<ReleasedBits>,
    probe_users: Vec<UserId>,
    probe_items: Vec<ItemId>,
}

impl CorruptionFixture {
    fn build(tag: &str, mode: XMapMode) -> Self {
        let toy = ToyScenario::build();
        let config = XMapConfig {
            mode,
            k: 2,
            ..XMapConfig::default()
        };
        let probe_users: Vec<UserId> = (0..toy.matrix.n_users() as u32).map(UserId).collect();
        let probe_items: Vec<ItemId> = toy
            .matrix
            .items_in_domain(DomainId::TARGET)
            .into_iter()
            .collect();

        let dir = scratch_dir(tag);
        let model =
            XMapModel::fit(&toy.matrix, DomainId::SOURCE, DomainId::TARGET, config).unwrap();
        model.persist(&dir).unwrap();
        let mut prefix_bits = vec![released_bits(&model, &probe_users, &probe_items)];
        let deltas = [
            {
                let mut d = RatingDelta::new();
                d.push_timed(0, probe_items[0].0, 4.0, 100);
                d
            },
            {
                let mut d = RatingDelta::new();
                d.push_timed(1, probe_items[1].0, 2.0, 101).push_timed(
                    2,
                    probe_items[0].0,
                    5.0,
                    102,
                );
                d
            },
        ];
        for delta in &deltas {
            model.apply_delta(delta).unwrap();
            prefix_bits.push(released_bits(&model, &probe_users, &probe_items));
        }
        CorruptionFixture {
            dir,
            prefix_bits,
            probe_users,
            probe_items,
        }
    }

    fn pristine(&self, name: &str) -> Vec<u8> {
        std::fs::read(self.dir.join(name)).unwrap()
    }

    /// Writes damaged store files into a work directory and attempts a recovery.
    /// Asserts the contract: `Ok` must be one of the legal prefixes, `Err` must be
    /// `Corrupt` (with one carve-out: damage to the *snapshot* may surface as a
    /// decode `Corrupt` only — it can never succeed with different bits).
    fn check(&self, work: &Path, snapshot: &[u8], journal: &[u8], what: &str) {
        std::fs::write(work.join(xmap_suite::core::SNAPSHOT_FILE), snapshot).unwrap();
        std::fs::write(work.join(xmap_suite::core::JOURNAL_FILE), journal).unwrap();
        match XMapModel::open(work) {
            Ok(recovered) => {
                let bits = released_bits(&recovered, &self.probe_users, &self.probe_items);
                assert!(
                    self.prefix_bits.contains(&bits),
                    "{what}: recovery succeeded with bits matching no journaled prefix \
                     (epoch {})",
                    recovered.epoch()
                );
            }
            Err(XMapError::Corrupt { .. }) => {}
            Err(other) => panic!("{what}: expected Corrupt, got {other}"),
        }
    }
}

#[test]
fn journal_truncated_at_every_byte_recovers_a_prefix_or_fails_corrupt() {
    let fx = CorruptionFixture::build("journal_trunc", XMapMode::NxMapItemBased);
    let snapshot = fx.pristine(xmap_suite::core::SNAPSHOT_FILE);
    let journal = fx.pristine(xmap_suite::core::JOURNAL_FILE);
    let work = scratch_dir("journal_trunc_work");
    for cut in 0..=journal.len() {
        fx.check(
            &work,
            &snapshot,
            &journal[..cut],
            &format!("journal cut at {cut}"),
        );
    }
    let _ = std::fs::remove_dir_all(&work);
    let _ = std::fs::remove_dir_all(&fx.dir);
}

#[test]
fn snapshot_truncated_at_every_byte_fails_corrupt() {
    let fx = CorruptionFixture::build("snap_trunc", XMapMode::NxMapItemBased);
    let snapshot = fx.pristine(xmap_suite::core::SNAPSHOT_FILE);
    let journal = fx.pristine(xmap_suite::core::JOURNAL_FILE);
    let work = scratch_dir("snap_trunc_work");
    for cut in 0..snapshot.len() {
        std::fs::write(work.join(xmap_suite::core::SNAPSHOT_FILE), &snapshot[..cut]).unwrap();
        std::fs::write(work.join(xmap_suite::core::JOURNAL_FILE), &journal).unwrap();
        match XMapModel::open(&work) {
            Err(XMapError::Corrupt { .. }) => {}
            Ok(_) => panic!("snapshot cut at {cut} of {} loaded", snapshot.len()),
            Err(other) => panic!("snapshot cut at {cut}: expected Corrupt, got {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&work);
    let _ = std::fs::remove_dir_all(&fx.dir);
}

mod byte_flips {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any single flipped bit in the journal either leaves a bit-identical legal
        /// prefix (the flip tore the tail) or fails with `Corrupt` — never a panic,
        /// never wrong bits. Offsets are sampled over the whole file.
        #[test]
        fn journal_byte_flip_recovers_a_prefix_or_fails_corrupt(
            frac in 0.0f64..1.0,
            bit in 0u32..8,
        ) {
            let fx = fixture();
            let journal = fx.pristine(xmap_suite::core::JOURNAL_FILE);
            let snapshot = fx.pristine(xmap_suite::core::SNAPSHOT_FILE);
            let offset = ((frac * journal.len() as f64) as usize).min(journal.len() - 1);
            let mut damaged = journal.clone();
            damaged[offset] ^= 1 << bit;
            let work = scratch_dir(&format!("journal_flip_{offset}_{bit}"));
            fx.check(
                &work,
                &snapshot,
                &damaged,
                &format!("journal bit {bit} flipped at {offset}"),
            );
            let _ = std::fs::remove_dir_all(&work);
        }

        /// Any single flipped bit in the snapshot fails with `Corrupt`: the footer
        /// CRC covers the magic, version, length and payload in full.
        #[test]
        fn snapshot_byte_flip_fails_corrupt(frac in 0.0f64..1.0, bit in 0u32..8) {
            let fx = fixture();
            let snapshot = fx.pristine(xmap_suite::core::SNAPSHOT_FILE);
            let journal = fx.pristine(xmap_suite::core::JOURNAL_FILE);
            let offset = ((frac * snapshot.len() as f64) as usize).min(snapshot.len() - 1);
            let mut damaged = snapshot.clone();
            damaged[offset] ^= 1 << bit;
            let work = scratch_dir(&format!("snap_flip_{offset}_{bit}"));
            std::fs::write(work.join(xmap_suite::core::SNAPSHOT_FILE), &damaged).unwrap();
            std::fs::write(work.join(xmap_suite::core::JOURNAL_FILE), &journal).unwrap();
            match XMapModel::open(&work) {
                Err(XMapError::Corrupt { .. }) => {}
                Ok(_) => panic!("snapshot with bit {bit} flipped at {offset} loaded"),
                Err(other) => {
                    panic!("snapshot flip at {offset}: expected Corrupt, got {other}")
                }
            }
            let _ = std::fs::remove_dir_all(&work);
        }
    }

    /// One shared fixture across all sampled cases (fitting per case would dominate
    /// the runtime); private mode, so flips over the privacy ledger are covered too.
    fn fixture() -> &'static CorruptionFixture {
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<CorruptionFixture> = OnceLock::new();
        FIXTURE.get_or_init(|| CorruptionFixture::build("byte_flips", XMapMode::XMapUserBased))
    }
}
