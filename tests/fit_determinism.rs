//! The fit determinism gate: a full `XMapModel::fit` must produce **bit-identical**
//! models at 1, 2 and 8 workers in all four modes — graph bits, replacement table and
//! predictions on a probe set — with identical per-stage fit task bags
//! (`baseliner` / `generator` / `recommender` ledgers, plus the extender's).
//!
//! This mirrors the evaluation gate (`evaluate_batch_is_bit_identical_...`): the fit
//! stages partition by data-derived keys and the private RNG streams derive from
//! `(seed, item)`, so the worker count must never leak into a released model.
//!
//! Graph bits are covered twice: arena-level (`BaselinerStage` vs
//! `SimilarityGraph::build_serial`, asserted with ledgers in
//! `xmap_core::pipeline::tests::staged_baseliner_is_bit_identical_to_build_serial_at_1_2_and_8_workers`)
//! and model-level here, through the released predictions and replacement table that
//! depend on every edge of the graph.

use xmap_suite::prelude::*;

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

const GATE_WORKERS: [usize; 3] = [1, 2, 8];

/// Everything a fitted model releases, reduced to comparable bits.
#[derive(Debug, PartialEq)]
struct ModelFingerprint {
    replacements: Vec<(ItemId, ItemId)>,
    prediction_bits: Vec<u64>,
    recommendations: Vec<Vec<(ItemId, u64)>>,
    baseliner_costs: Vec<f64>,
    generator_costs: Vec<f64>,
    recommender_costs: Vec<f64>,
    extension_costs: Vec<f64>,
}

fn fingerprint(
    model: &XMapModel,
    probe_users: &[UserId],
    probe_items: &[ItemId],
) -> ModelFingerprint {
    let mut replacements: Vec<(ItemId, ItemId)> = model.replacements().iter().collect();
    replacements.sort();
    let prediction_bits = probe_users
        .iter()
        .flat_map(|&u| probe_items.iter().map(move |&i| (u, i)).collect::<Vec<_>>())
        .map(|(u, i)| model.predict(u, i).to_bits())
        .collect();
    let recommendations = probe_users
        .iter()
        .map(|&u| {
            model
                .recommend(u, 5)
                .into_iter()
                .map(|(i, s)| (i, s.to_bits()))
                .collect()
        })
        .collect();
    let stats = model.stats();
    ModelFingerprint {
        replacements,
        prediction_bits,
        recommendations,
        baseliner_costs: stats.baseliner_task_costs.clone(),
        generator_costs: stats.generator_task_costs.clone(),
        recommender_costs: stats.recommender_task_costs.clone(),
        extension_costs: stats.extension_task_costs.clone(),
    }
}

#[test]
fn fit_is_bit_identical_at_1_2_and_8_workers_in_all_four_modes() {
    let ds = dataset();
    let probe_users: Vec<UserId> = ds
        .overlap_users
        .iter()
        .copied()
        .take(6)
        .chain(ds.source_only_users.iter().copied().take(4))
        .collect();
    let probe_items: Vec<ItemId> = ds.target_items().into_iter().take(15).collect();
    for mode in [
        XMapMode::NxMapItemBased,
        XMapMode::NxMapUserBased,
        XMapMode::XMapItemBased,
        XMapMode::XMapUserBased,
    ] {
        let mut reference: Option<ModelFingerprint> = None;
        for workers in GATE_WORKERS {
            let model = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                XMapConfig {
                    mode,
                    k: 8,
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            let fp = fingerprint(&model, &probe_users, &probe_items);
            assert!(
                !fp.replacements.is_empty(),
                "{mode:?}: the fit must map at least one item"
            );
            assert!(
                !fp.baseliner_costs.is_empty() && !fp.generator_costs.is_empty(),
                "{mode:?}: baseliner and generator must record their task bags"
            );
            assert_eq!(
                fp.recommender_costs.is_empty(),
                !mode.is_item_based(),
                "{mode:?}: only the item-based modes have a fit-time kNN task bag"
            );
            match &reference {
                None => reference = Some(fp),
                Some(expected) => assert_eq!(
                    &fp, expected,
                    "{mode:?} at {workers} workers released different bits than 1 worker"
                ),
            }
        }
    }
}
