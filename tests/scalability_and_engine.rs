//! Integration tests of the scalability path: the pipeline's per-stage accounting, the
//! worker-pool parallelism, and the cluster simulator that reproduces Figure 11.

use xmap_suite::engine::{ClusterCostModel, ClusterSim, WorkerPool};
use xmap_suite::prelude::*;

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig {
        n_source_items: 60,
        n_target_items: 60,
        n_source_only_users: 40,
        n_target_only_users: 40,
        n_overlap_users: 30,
        ratings_per_user: 10,
        latent_dim: 4,
        noise: 0.3,
        seed: 19,
        popularity_skew: 0.0,
    })
}

#[test]
fn worker_count_does_not_change_model_outputs() {
    let ds = dataset();
    let fit = |workers: usize| {
        XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                k: 15,
                workers,
                ..XMapConfig::default()
            },
        )
        .unwrap()
    };
    let serial = fit(1);
    let parallel = fit(4);
    assert_eq!(
        serial.stats().n_xsim_hetero_pairs,
        parallel.stats().n_xsim_hetero_pairs
    );
    // The Dataflow's task costs are data-derived, so the extender's task bag is
    // identical no matter how many workers executed it.
    assert_eq!(
        serial.stats().extension_task_costs,
        parallel.stats().extension_task_costs
    );
    let user = ds.source_only_users[0];
    for item in ds.target_items().into_iter().take(20) {
        assert_eq!(serial.predict(user, item), parallel.predict(user, item));
    }
}

#[test]
fn pipeline_stage_accounting_covers_all_four_components() {
    let ds = dataset();
    let cfg = XMapConfig {
        k: 15,
        ..XMapConfig::default()
    };
    let model = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
    let stats = model.stats();
    let names: Vec<&str> = stats
        .stage_durations
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(
        names,
        vec!["baseliner", "extender", "generator", "recommender"]
    );
    // The Dataflow runner records one task cost per dataflow partition; every source
    // item contributes at least 1.0 to its partition's cost.
    assert_eq!(
        model.stats().extension_task_costs.len(),
        cfg.partitions,
        "one extension task per dataflow partition"
    );
    assert!(model.stats().extension_task_costs.iter().all(|&c| c >= 0.0));
    assert!(
        model.stats().extension_task_costs.iter().sum::<f64>() >= ds.source_items().len() as f64,
        "costs must cover every source item"
    );
}

#[test]
fn figure_11_shape_xmap_scales_nearly_linearly_and_beats_als() {
    let ds = dataset();
    // Spark-style sizing: comfortably more partitions than the largest simulated
    // cluster, so the LPT schedule stays balanced across the whole 4–20 machine sweep.
    let model = XMapModel::fit(
        &ds.matrix,
        DomainId::SOURCE,
        DomainId::TARGET,
        XMapConfig {
            k: 15,
            partitions: 128,
            ..XMapConfig::default()
        },
    )
    .unwrap();
    let xmap = ClusterSim::new(
        model.stats().extension_task_costs.clone(),
        ClusterCostModel::xmap_like(),
    );
    let als_costs: Vec<f64> = ds
        .matrix
        .users()
        .map(|u| 1.0 + ds.matrix.user_degree(u) as f64)
        .collect();
    let als = ClusterSim::new(als_costs, ClusterCostModel::als_like());

    let machines: Vec<usize> = (4..=20).collect();
    let xmap_curve = xmap.speedup_curve(&machines, 5);
    let als_curve = als.speedup_curve(&machines, 5);

    // speedup is monotonically non-decreasing in machines for X-Map
    for w in xmap_curve.windows(2) {
        assert!(w[1].speedup >= w[0].speedup - 1e-9);
    }
    // X-Map dominates ALS at every machine count beyond the baseline
    for (x, a) in xmap_curve.iter().zip(&als_curve) {
        if x.machines > 5 {
            assert!(
                x.speedup >= a.speedup,
                "X-Map should out-scale ALS at {} machines: {} vs {}",
                x.machines,
                x.speedup,
                a.speedup
            );
        }
    }
    // near-linear: at 20 machines (4x the baseline resources) X-Map achieves a large
    // fraction of the ideal 4x speedup, ALS noticeably less
    let x20 = xmap_curve.last().unwrap().speedup;
    let a20 = als_curve.last().unwrap().speedup;
    assert!(x20 > 2.0, "X-Map speedup at 20 machines too low: {x20}");
    assert!(x20 <= 4.0 + 1e-9);
    assert!(a20 < x20);
}

#[test]
fn worker_pool_parallel_map_is_exact_over_pipeline_sized_workloads() {
    let pool = WorkerPool::new(4);
    let items: Vec<u64> = (0..5_000).collect();
    let out = pool.parallel_map(&items, |x| x * x % 97);
    let expect: Vec<u64> = items.iter().map(|x| x * x % 97).collect();
    assert_eq!(out, expect);
}
